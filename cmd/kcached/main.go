// Command kcached is the fleet cache daemon: it serves the
// content-addressed analysis-result store over HTTP so a fleet of kserve
// replicas shares one warm cache. A replica started with
// -cache-remote=http://kcached-host:8322 composes this daemon between
// its in-memory tier and its (optional) local disk tier; the second
// replica's first scan of a corpus its sibling already analyzed is then
// answered from here instead of recomputed.
//
// The daemon is a memory front tier over the segment-packed disk store
// (internal/store/segment) behind the store.CacheServer protocol: a
// fleet GET that misses memory is one index probe plus one pread into
// an append-only segment file, entries survive restarts (recovery is a
// single sequential segment scan), and a directory written by an older
// file-per-entry build is migrated into segments on first open.
// Consistency needs no coordination — keys are content addresses, so an
// entry can only ever be correct for the inputs that produced it;
// invalidation (POST /invalidate, issued by replicas applying
// changesets) is garbage collection of unreachable keys, not a
// correctness mechanism.
//
// Usage:
//
//	kcached -cache-dir /var/cache/kcached
//	kcached -addr :8322 -cache-ttl 72h -cache-max-bytes 1073741824
//	kcached -cache-dir /var/cache/kcached -pprof-addr localhost:6061
//
// Endpoints:
//
//	GET  /entry/{id}?fh=&ck=&eng=   cached result (200) or miss (404)
//	PUT  /entry/{id}?fh=&ck=&eng=   store a result (204)
//	POST /invalidate                {"func_hashes": [...]}
//	POST /feed                      publish a fleet changeset commit
//	GET  /feed?from=N               pull commits a shard missed
//	GET  /trace/{id}                retained trace fragment (tail-sampled)
//	GET  /traces?limit=N&slow=1     local trace index
//	GET  /stats                     store + request counters
//	GET  /metrics                   Prometheus text exposition
//	GET  /healthz                   liveness
//
// The /feed pair is the sharded fleet's generation feed (see
// internal/shard): a kserve coordinator that commits a changeset
// publishes (generation, changes) here, and a shard owner that detects
// it is behind pulls and replays the entries it missed. The feed is a
// bounded in-memory ledger (-feed-cap), not a durability mechanism —
// a shard that falls out of the retention window must be reseeded.
//
// Every request is access-logged with its X-Trace-Id (when the client —
// a kserve replica's remote tier — sent one), and with tracing enabled
// (-trace-retain) each request also records a span fragment attached
// under the caller's X-Span-Id: a coordinating kserve's GET /trace/{id}
// pulls those fragments into the assembled cross-host tree, so the
// kcached leg of a slow scan shows up as spans, not as grep homework.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"knighter/internal/obs"
	"knighter/internal/shard"
	"knighter/internal/store"
)

func main() {
	addr := flag.String("addr", ":8322", "listen address")
	cacheDir := flag.String("cache-dir", "", "cache directory (required)")
	cacheTTL := flag.Duration("cache-ttl", 0, "drop entries older than this (0 = keep forever)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "disk byte budget; compaction evicts oldest-first past it (0 = unbounded)")
	cacheBytes := flag.Int64("cache-bytes", store.DefaultMemoryBytes, "memory front-tier byte budget (0 = library default)")
	feedCap := flag.Int("feed-cap", shard.DefaultFeedCap, "generation-feed retention (entries); shards further behind than this cannot converge from the feed")
	traceRetain := flag.Int("trace-retain", 512, "completed trace fragments retained for GET /trace/{id} (0 disables tracing)")
	traceSample := flag.Float64("trace-sample", 0.05, "probability of retaining an unremarkable trace; slow and errored traces are always retained")
	traceSlow := flag.Duration("trace-slow", 250*time.Millisecond, "always retain traces of requests at least this slow (0 disables the slow class)")
	pprofAddr := flag.String("pprof-addr", "", "optional side listen address for net/http/pprof (e.g. localhost:6061); never exposed on the main port")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		v, gv := obs.BuildVersion()
		fmt.Printf("kcached %s (%s)\n", v, gv)
		return
	}
	if *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "kcached: -cache-dir is required")
		os.Exit(2)
	}
	// The signal context exists before the compaction loop starts, so
	// SIGINT/SIGTERM stops background sweeps as part of the drain.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	var opts []store.SegmentDiskOption
	if *cacheMaxBytes > 0 {
		opts = append(opts, store.SegmentDiskMaxBytes(*cacheMaxBytes))
	}
	disk, err := store.NewSegmentDisk(*cacheDir, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kcached:", err)
		os.Exit(1)
	}
	if n := disk.Migrated(); n > 0 {
		log.Printf("kcached: migrated %d file-per-entry records into segments", n)
	}
	// The daemon's store is a memory front tier over the segment disk
	// store: a hot fleet GET never touches the segment log at all, a
	// warm one is an index probe plus one pread. Both tiers are
	// instrumented individually, so kcached's /metrics carries the same
	// store_* families as kserve's, under the kcached namespace with
	// tier="memory" and tier="disk".
	reg := obs.NewRegistry("kcached")
	gcSweep := reg.Histogram("gc_sweep_duration_seconds",
		"Wall time of one GC sweep over the backing store.", nil)
	tier := store.NewTiered(
		store.Instrument(reg, "memory", store.NewMemory(*cacheBytes)).SampleLatency(4),
		store.Instrument(reg, "disk", disk))
	cs := store.NewCacheServer(tier)
	cs.EnableTracing(obs.NewTraceStore(*traceRetain, *traceSample, *traceSlow))
	cs.Register(reg)
	// The generation feed rides on the cache daemon because it is the
	// one process every sharded replica already dials.
	feed := shard.NewFeed(*feedCap)
	feed.Register(reg)
	// Compaction always runs: even without a TTL or byte budget it
	// reclaims the dead bytes that overwrites and invalidations leave in
	// the segment log. It stops with the signal context.
	disk.StartCompactLoop(ctx, *cacheTTL, func(n int, dur time.Duration) {
		gcSweep.Observe(dur.Seconds())
		if n > 0 {
			log.Printf("kcached: GC removed %d entries in %s", n, dur)
		}
	})
	if *pprofAddr != "" {
		startPprof(*pprofAddr)
	}

	// Graceful shutdown: SIGTERM/SIGINT stops the listener, in-flight
	// entry requests drain (bounded), and the final store shape goes to
	// the log — a fleet roll never truncates a PUT mid-body.
	mux := http.NewServeMux()
	mux.Handle("/feed", feed.Handler())
	mux.Handle("/", cs.Handler())
	hs := &http.Server{Addr: *addr, Handler: store.AccessLog(log.Default(), mux)}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	st := disk.Stats()
	version, goVersion := obs.BuildVersion()
	log.Printf("kcached: %s (%s) serving %s (%d entries, %d bytes) on %s",
		version, goVersion, *cacheDir, st.Entries, st.Bytes, *addr)
	select {
	case err := <-errCh:
		log.Fatal("kcached: ", err)
	case <-ctx.Done():
		stop()
		log.Printf("kcached: shutdown signal; draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("kcached: shutdown: %v", err)
		}
		st := disk.Stats()
		// Final sync: the flush window's tail is on disk before exit, so
		// the next boot recovers everything this one served.
		if err := disk.Close(); err != nil {
			log.Printf("kcached: disk close: %v", err)
		}
		log.Printf("kcached: final stats: entries=%d bytes=%d hits=%d misses=%d hit_rate=%.3f",
			st.Entries, st.Bytes, st.Hits, st.Misses, st.HitRate())
	}
}

// startPprof serves net/http/pprof on its own listener — never the main
// port, so profiling endpoints are reachable only where the operator
// points them (typically localhost).
func startPprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		log.Printf("kcached: pprof on %s", addr)
		if err := http.ListenAndServe(addr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("kcached: pprof: %v", err)
		}
	}()
}
