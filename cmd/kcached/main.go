// Command kcached is the fleet cache daemon: it serves the
// content-addressed analysis-result store over HTTP so a fleet of kserve
// replicas shares one warm cache. A replica started with
// -cache-remote=http://kcached-host:8322 composes this daemon between
// its in-memory tier and its (optional) local disk tier; the second
// replica's first scan of a corpus its sibling already analyzed is then
// answered from here instead of recomputed.
//
// The daemon is deliberately nothing more than the existing store.Disk
// tier behind the store.CacheServer protocol: entries are one JSON file
// each, sharded by function hash, and survive restarts. Consistency
// needs no coordination — keys are content addresses, so an entry can
// only ever be correct for the inputs that produced it; invalidation
// (POST /invalidate, issued by replicas applying changesets) is garbage
// collection of unreachable keys, not a correctness mechanism.
//
// Usage:
//
//	kcached -cache-dir /var/cache/kcached
//	kcached -addr :8322 -cache-ttl 72h -cache-max-bytes 1073741824
//
// Endpoints:
//
//	GET  /entry/{id}?fh=&ck=&eng=   cached result (200) or miss (404)
//	PUT  /entry/{id}?fh=&ck=&eng=   store a result (204)
//	POST /invalidate                {"func_hashes": [...]}
//	GET  /stats                     store + request counters
//	GET  /healthz                   liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"knighter/internal/store"
)

func main() {
	addr := flag.String("addr", ":8322", "listen address")
	cacheDir := flag.String("cache-dir", "", "cache directory (required)")
	cacheTTL := flag.Duration("cache-ttl", 0, "drop entries older than this (0 = keep forever)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "byte budget; GC evicts oldest-first past it (0 = unbounded)")
	flag.Parse()

	if *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "kcached: -cache-dir is required")
		os.Exit(2)
	}
	var opts []store.DiskOption
	if *cacheMaxBytes > 0 {
		opts = append(opts, store.DiskMaxBytes(*cacheMaxBytes))
	}
	disk, err := store.NewDisk(*cacheDir, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kcached:", err)
		os.Exit(1)
	}
	if *cacheTTL > 0 || *cacheMaxBytes > 0 {
		disk.StartGCLoop(*cacheTTL, func(n int, err error) {
			if err != nil {
				log.Printf("kcached: GC: %v", err)
			} else if n > 0 {
				log.Printf("kcached: GC removed %d entries", n)
			}
		})
	}
	st := disk.Stats()
	log.Printf("kcached: serving %s (%d entries, %d bytes) on %s", *cacheDir, st.Entries, st.Bytes, *addr)
	log.Fatal(http.ListenAndServe(*addr, store.NewCacheServer(disk).Handler()))
}
