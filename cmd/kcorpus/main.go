// Command kcorpus generates and inspects the synthetic kernel corpus.
//
// Usage:
//
//	kcorpus -stats                 # corpus shape summary
//	kcorpus -dump /tmp/kernel      # write the tree to disk
//	kcorpus -bugs                  # print the ground-truth bug ledger
//	kcorpus -cat drivers/spi/...   # print one generated file
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"knighter/internal/kernel"
)

func main() {
	stats := flag.Bool("stats", false, "print corpus statistics")
	dump := flag.String("dump", "", "write the corpus tree under this directory")
	bugs := flag.Bool("bugs", false, "print the ground-truth bug ledger")
	baits := flag.Bool("baits", false, "print the planted FP-bait ledger")
	cat := flag.String("cat", "", "print one generated file by path")
	commits := flag.Bool("commits", false, "print the benchmark commit dataset")
	seed := flag.Int64("seed", 1, "corpus seed")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	flag.Parse()

	corpus := kernel.Generate(kernel.Config{Seed: *seed, Scale: *scale})

	switch {
	case *stats:
		files, lines := 0, 0
		perSub := map[string]int{}
		for _, f := range corpus.Files {
			files++
			lines += strings.Count(f.Src, "\n")
			perSub[f.Subsystem]++
		}
		fmt.Printf("files: %d   lines: %d   seeded bugs: %d   bait functions: %d\n",
			files, lines, len(corpus.Bugs), len(corpus.Baits))
		for sub, n := range perSub {
			fmt.Printf("  %-10s %d files\n", sub, n)
		}
	case *dump != "":
		for _, f := range corpus.Files {
			path := filepath.Join(*dump, f.Path)
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(path, []byte(f.Src), 0o644); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("wrote %d files under %s\n", len(corpus.Files), *dump)
	case *bugs:
		for _, b := range corpus.Bugs {
			fmt.Printf("%s %-18s %-20s %s:%s (introduced %s)\n",
				b.ID, b.Class, b.Flavor, b.File, b.Func, b.Introduced.Format("2006-01-02"))
		}
	case *baits:
		for _, b := range corpus.Baits {
			fmt.Printf("%-18s %-20s %s:%s\n", b.Kind, b.Flavor, b.File, b.Func)
		}
	case *cat != "":
		for _, f := range corpus.Files {
			if f.Path == *cat {
				fmt.Print(f.Src)
				return
			}
		}
		fatal(fmt.Errorf("no such file %q in the corpus", *cat))
	case *commits:
		store := kernel.BuildHandCommits(11)
		for _, c := range store.All() {
			fmt.Printf("%s %-18s %-22s %s\n", c.ID, c.Class, c.Flavor, c.Subject)
		}
	default:
		flag.Usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcorpus:", err)
	os.Exit(1)
}
