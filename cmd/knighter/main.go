// Command knighter runs the checker-synthesis pipeline (Algorithm 1 +
// refinement) on commits from the benchmark dataset and prints every
// intermediate artifact: the patch, the inferred bug pattern, the plan,
// the synthesized checker DSL, validation counts, and the refinement
// outcome.
//
// Usage:
//
//	knighter -list                 # list the benchmark commits
//	knighter -commit <id-prefix>   # run the pipeline on one commit
//	knighter -class NPD            # run on every commit of a class
//	knighter -show-patch           # include the unified diff
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/refine"
	"knighter/internal/scan"
	"knighter/internal/synth"
	"knighter/internal/triage"
	"knighter/internal/vcs"
)

func main() {
	list := flag.Bool("list", false, "list benchmark commits")
	commitID := flag.String("commit", "", "commit id prefix to synthesize a checker for")
	class := flag.String("class", "", "synthesize checkers for every commit of this class")
	showPatch := flag.Bool("show-patch", false, "print the unified diff")
	noRefine := flag.Bool("no-refine", false, "skip the corpus refinement phase")
	corpusSeed := flag.Int64("corpus-seed", 1, "corpus generation seed")
	commitSeed := flag.Int64("commit-seed", 11, "commit dataset seed")
	scale := flag.Float64("scale", 1.0, "corpus scale for the refinement scan")
	flag.Parse()

	store := kernel.BuildHandCommits(*commitSeed)
	if *list {
		for _, c := range store.All() {
			fmt.Printf("%s  %-18s %-22s %s\n", c.ID, c.Class, c.Flavor, c.Subject)
		}
		return
	}

	var targets []*vcs.Commit
	for _, c := range store.All() {
		if *commitID != "" && strings.HasPrefix(c.ID, *commitID) {
			targets = append(targets, c)
		}
		if *class != "" && c.Class == *class {
			targets = append(targets, c)
		}
	}
	if len(targets) == 0 {
		fmt.Fprintln(os.Stderr, "knighter: no matching commits (use -list, -commit <id>, or -class <name>)")
		os.Exit(1)
	}

	model := llm.NewOracle(llm.O3Mini)
	pipe := synth.NewPipeline(model, synth.Options{})
	var loop *refine.Loop
	if !*noRefine {
		corpus := kernel.Generate(kernel.Config{Seed: *corpusSeed, Scale: *scale})
		cb, err := scan.NewCodebase(corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "knighter:", err)
			os.Exit(1)
		}
		loop = refine.NewLoop(cb, triage.NewAgent(corpus), model, pipe.Val, refine.Options{})
	}

	for _, c := range targets {
		runOne(pipe, loop, c, *showPatch)
	}
}

func runOne(pipe *synth.Pipeline, loop *refine.Loop, c *vcs.Commit, showPatch bool) {
	fmt.Printf("=== commit %s (%s / %s)\n%s\n\n", c.ID, c.Class, c.Flavor, c.Message())
	if showPatch {
		fmt.Println(c.Diff())
	}
	out := pipe.GenChecker(c)
	if out.Pattern != nil {
		fmt.Println("-- bug pattern --")
		fmt.Println(out.Pattern.Text)
	}
	if out.Plan != nil && len(out.Plan.Steps) > 0 {
		fmt.Println("\n-- plan --")
		fmt.Println(out.Plan.Text())
	}
	if !out.Valid {
		fmt.Printf("\nsynthesis FAILED after %d iterations (%d failed attempts)\n\n", out.Iterations, len(out.Failed))
		for _, f := range out.Failed {
			fmt.Printf("  iteration %d: %s\n", f.Iteration, f.Symptom)
		}
		return
	}
	fmt.Printf("\n-- checker (valid after %d iteration(s); N_buggy=%d, N_patched=%d) --\n",
		out.Iterations, out.NBuggy, out.NPatched)
	fmt.Println(out.Spec.String())
	if loop == nil {
		return
	}
	rr := loop.Run(c, out.Spec)
	fmt.Printf("-- refinement: %s after %d round(s), %d accepted step(s); final scan: %d report(s) --\n",
		rr.Disposition, rr.Rounds, rr.Steps, len(rr.FinalReports))
	if rr.Steps > 0 {
		fmt.Println("\n-- refined checker --")
		fmt.Println(rr.Spec.String())
	}
	max := len(rr.FinalReports)
	if max > 5 {
		max = 5
	}
	for _, r := range rr.FinalReports[:max] {
		fmt.Println("  " + r.String())
	}
	fmt.Println()
}
