package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"knighter/internal/api"
	"knighter/internal/kernel"
	"knighter/internal/obs"
	"knighter/internal/scan"
	"knighter/internal/store"
)

// newObsReplica builds a fully instrumented kserve replica — the same
// composition main() wires: instrumented memory tier (plus an
// instrumented remote tier when kcURL is set), coalescing on top, the
// metrics registry installed, and the access log captured for
// inspection.
func newObsReplica(t *testing.T, kcURL string) (*server, *httptest.Server, *bytes.Buffer) {
	t.Helper()
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.1})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("kserve")
	var remote *store.Remote
	var st store.Store = store.Instrument(reg, "memory", store.NewMemory(0)).SampleLatency(4)
	if kcURL != "" {
		remote, err = store.NewRemote(kcURL, store.RemoteConfig{})
		if err != nil {
			t.Fatal(err)
		}
		st = store.NewTiered(st, store.Instrument(reg, "remote", asyncInvalidate{remote}))
	}
	st = store.Instrument(reg, "coalesced", store.NewCoalesced(st)).SampleLatency(4)
	srv := newServer(scan.NewIncremental(cb, st))
	srv.remote = remote
	var logBuf bytes.Buffer
	srv.accessLog = log.New(&logBuf, "", 0)
	srv.registerMetrics(reg)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts, &logBuf
}

func getMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("GET /metrics Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExposition: after real traffic, /metrics parses as valid
// Prometheus text format (grammar, no duplicate series) and carries the
// series the dashboards and the CI smoke test grep for.
func TestMetricsExposition(t *testing.T) {
	_, ts, _ := newObsReplica(t, "")
	postScan(t, ts, api.ScanRequest{Checker: testChecker})
	postScan(t, ts, api.ScanRequest{Checker: testChecker}) // warm: memory hits

	text := getMetrics(t, ts)
	ids, err := obs.CheckExposition(text)
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus text format: %v", err)
	}
	if len(ids) == 0 {
		t.Fatal("/metrics exposed no series")
	}
	for _, want := range []string{
		`kserve_scan_duration_seconds_bucket{le="+Inf"} 2`,
		`kserve_scan_duration_seconds_count 2`,
		`kserve_store_requests_total{tier="memory"}`,
		`kserve_store_hits_total{tier="memory"}`,
		`kserve_scan_stage_duration_seconds_bucket{stage="parse",le=`,
		`kserve_scan_stage_duration_seconds_bucket{stage="engine_eval",le=`,
		`kserve_http_requests_total{route="scan",code="2xx"} 2`,
		`kserve_scans_total 2`,
		`kserve_engine_timeouts_total`,
		`kserve_build_info{version=`,
		`kserve_uptime_seconds`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsStageObserverOnlyTimesInstrumentedScans: a scan through an
// instrumented daemon lands in every stage histogram exactly once per
// scan.
func TestMetricsStageTimings(t *testing.T) {
	_, ts, _ := newObsReplica(t, "")
	postScan(t, ts, api.ScanRequest{Checker: testChecker})
	text := getMetrics(t, ts)
	for _, stage := range []string{
		scan.StageParse, scan.StageCacheProbe, scan.StageEngineEval, scan.StageSerialize,
	} {
		want := `kserve_scan_stage_duration_seconds_count{stage="` + stage + `"} 1`
		if !strings.Contains(text, want+"\n") {
			t.Errorf("stage %s not observed exactly once; want line %q", stage, want)
		}
	}
}

// TestIncludeTimingReturnsTimeline: include_timing adds the trace id
// and a per-stage span timeline to the /scan reply; omitting it keeps
// the reply unchanged.
func TestIncludeTimingReturnsTimeline(t *testing.T) {
	_, ts, _ := newObsReplica(t, "")

	resp := postScan(t, ts, api.ScanRequest{Checker: testChecker, IncludeTiming: true})
	if resp.TraceID == "" {
		t.Fatal("include_timing reply has no trace_id")
	}
	stages := map[string]bool{}
	for _, sp := range resp.Timing {
		stages[sp.Name] = true
		if sp.DurMS < 0 || sp.OffsetMS < 0 {
			t.Errorf("span %s has negative timing: %+v", sp.Name, sp)
		}
	}
	for _, want := range []string{scan.StageParse, scan.StageCacheProbe, scan.StageEngineEval, scan.StageSerialize} {
		if !stages[want] {
			t.Errorf("timeline missing stage %s; got %+v", want, resp.Timing)
		}
	}

	plain := postScan(t, ts, api.ScanRequest{Checker: testChecker})
	if plain.TraceID != "" || plain.Timing != nil {
		t.Fatalf("timing leaked into a reply that did not ask for it: %+v", plain.Timing)
	}
}

// TestTraceIDStitchesBothDaemonsLogs is the fleet-tracing acceptance
// criterion: a client-supplied X-Trace-Id on a kserve scan shows up in
// kserve's access log AND in kcached's — one grep joins the cross-host
// story — and the same id comes back in the response header.
func TestTraceIDStitchesBothDaemonsLogs(t *testing.T) {
	// kcached with its access log captured, exactly as main() wires it.
	disk, err := store.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var kcLog bytes.Buffer
	kc := httptest.NewServer(store.AccessLog(log.New(&kcLog, "", 0), store.NewCacheServer(disk).Handler()))
	t.Cleanup(kc.Close)

	_, ts, ksLog := newObsReplica(t, kc.URL)

	body, err := json.Marshal(api.ScanRequest{Checker: testChecker, IncludeTiming: true})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/scan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	const traceID = "abc-fleet-trace-1"
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /scan status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != traceID {
		t.Fatalf("response %s = %q, want %q", obs.TraceHeader, got, traceID)
	}
	var sr api.ScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.TraceID != traceID {
		t.Fatalf("reply trace_id = %q, want %q", sr.TraceID, traceID)
	}

	// The scan's remote-tier round-trips carry the id to kcached; both
	// daemons' logs now grep to the same trace.
	if !strings.Contains(ksLog.String(), "trace="+traceID) {
		t.Fatalf("kserve access log does not mention trace=%s:\n%s", traceID, ksLog.String())
	}
	if !strings.Contains(kcLog.String(), "trace="+traceID) {
		t.Fatalf("kcached access log does not mention trace=%s:\n%s", traceID, kcLog.String())
	}
}

// TestSlowScanLogEmitsTimeline: a request slower than -slow-scan gets
// the structured slow-request line with its trace id and timeline.
func TestSlowScanLogEmitsTimeline(t *testing.T) {
	srv, ts, logBuf := newObsReplica(t, "")
	srv.slowScan = time.Nanosecond // everything is slow
	postScan(t, ts, api.ScanRequest{Checker: testChecker})
	out := logBuf.String()
	if !strings.Contains(out, "slow request: route=scan trace=") {
		t.Fatalf("no slow-request line in log:\n%s", out)
	}
	if !strings.Contains(out, "timeline=[") || !strings.Contains(out, scan.StageEngineEval+"=") {
		t.Fatalf("slow-request line has no stage timeline:\n%s", out)
	}
}

// TestKcachedMetricsExposition: the kcached composition (instrumented
// disk tier + registered cache server) serves valid exposition with the
// entry-request and store families the smoke test greps for.
func TestKcachedMetricsExposition(t *testing.T) {
	disk, err := store.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("kcached")
	cs := store.NewCacheServer(store.Instrument(reg, "disk", disk))
	cs.Register(reg)
	kc := httptest.NewServer(cs.Handler())
	t.Cleanup(kc.Close)

	// Drive real traffic through a kserve replica so the counters move.
	_, ts, _ := newObsReplica(t, kc.URL)
	postScan(t, ts, api.ScanRequest{Checker: testChecker})

	resp, err := http.Get(kc.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obs.CheckExposition(string(body)); err != nil {
		t.Fatalf("kcached /metrics is not valid Prometheus text format: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		`kcached_entry_requests_total{op="get",outcome="miss"}`,
		`kcached_entry_requests_total{op="put",outcome="stored"}`,
		`kcached_request_duration_seconds_count{op="get"}`,
		`kcached_store_requests_total{tier="disk"}`,
		`kcached_store_entries`,
		`kcached_build_info{version=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("kcached /metrics missing %q", want)
		}
	}
}
