package main

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"knighter/internal/api"
	"knighter/internal/obs"
)

// admission is the bounded two-stage gate in front of the scan-shaped
// endpoints (/scan, /batch, /changeset): at most maxInflight requests
// execute at once, at most maxQueued wait behind them, and everything
// beyond that is shed immediately with 429 + Retry-After. Shedding is
// the backpressure ROADMAP asked for — one client blasting /batch can
// fill the queue, but it cannot make the daemon buffer unbounded work or
// starve the accept loop, and a well-behaved client sees an honest
// retry hint instead of a hung connection.
//
// The queue is additionally fair per client: each client (identified by
// the X-Client-ID header, falling back to the remote address) may hold
// at most maxQueuedPerClient queue slots, so a chatty client saturates
// its own allowance and gets shed while everyone else still queues —
// FIFO order among admitted requests is unchanged.
//
// Admission is deliberately in front of the handler, not inside it: a
// shed request costs one atomic add and one small JSON write, never a
// checker compile or a codebase lock.
type admission struct {
	// tokens is the inflight semaphore; sends acquire, receives release.
	tokens             chan struct{}
	maxQueued          int64
	maxQueuedPerClient int64
	queued             atomic.Int64
	inflight           atomic.Int64
	admitted           atomic.Int64
	shed               atomic.Int64
	fairShed           atomic.Int64

	// Cost weighting: an inflight token counts REQUESTS, but a /batch of
	// 50 checkers over the full corpus is not one /scan of one file. Each
	// admitted request additionally charges its cost (checkers x files
	// for reads, ops for writes) against costOutstanding, and when
	// maxCost > 0 a request whose cost would push the outstanding sum
	// past the budget is shed exactly like a full queue. maxCost == 0
	// still tracks the weight (the admission_cost_weight gauge stays
	// meaningful) but never sheds on it.
	maxCost         int64
	costOutstanding atomic.Int64
	costShed        atomic.Int64

	// cmu guards queuedByClient: per-client queue occupancy, entries
	// removed at zero so the map tracks only currently-queued clients.
	cmu            sync.Mutex
	queuedByClient map[string]int64

	// waitDur, when set by register, observes how long each admitted
	// request waited for an inflight slot (fast-path admissions count as
	// zero, so the distribution reflects what clients actually see).
	waitDur *obs.Histogram

	// generation, when set, stamps shed responses with the corpus
	// generation the daemon was serving at shed time (nil-safe: sheds
	// before the server is wired report generation 0).
	generation func() int64
}

// register exposes the gate on /metrics under the given name prefix
// (e.g. "admission" for the read gate, "write_admission" for the write
// gate): instantaneous queue depth and inflight gauges, cumulative
// admitted/shed counters, and the queue-wait histogram. Nil-safe so
// ungated daemons skip it.
func (a *admission) register(reg *obs.Registry, prefix string) {
	if a == nil {
		return
	}
	reg.GaugeFunc(prefix+"_queue_depth", "Requests currently waiting for an inflight slot.",
		func() float64 { return float64(a.queued.Load()) })
	reg.GaugeFunc(prefix+"_inflight", "Requests currently executing behind the gate.",
		func() float64 { return float64(a.inflight.Load()) })
	reg.CounterFunc(prefix+"_admitted_total", "Requests admitted through the gate.",
		func() float64 { return float64(a.admitted.Load()) })
	reg.CounterFunc(prefix+"_shed_total", "Requests shed with 429 (queue full or per-client bound).",
		func() float64 { return float64(a.shed.Load()) })
	reg.CounterFunc(prefix+"_fairness_shed_total", "Sheds caused by the per-client bound alone.",
		func() float64 { return float64(a.fairShed.Load()) })
	reg.GaugeFunc(prefix+"_cost_weight", "Summed cost weight (checkers x files) of requests currently executing behind the gate.",
		func() float64 { return float64(a.costOutstanding.Load()) })
	reg.CounterFunc(prefix+"_cost_shed_total", "Requests shed because their cost weight would exceed the outstanding-cost budget.",
		func() float64 { return float64(a.costShed.Load()) })
	a.waitDur = reg.Histogram(prefix+"_wait_seconds",
		"Queue wait of each admitted request; fast-path admissions observe zero.", nil)
}

// newAdmission returns a gate admitting maxInflight concurrent requests
// with maxQueued waiters (at most maxQueuedPerClient of them from any
// one client; <= 0 disables the per-client bound), or nil (no gating)
// when maxInflight <= 0.
func newAdmission(maxInflight, maxQueued, maxQueuedPerClient int) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &admission{
		tokens:             make(chan struct{}, maxInflight),
		maxQueued:          int64(maxQueued),
		maxQueuedPerClient: int64(maxQueuedPerClient),
		queuedByClient:     map[string]int64{},
	}
}

// clientKey identifies the requester for fairness accounting: an
// explicit X-Client-ID header when the client sends one (the refinement
// loop and eval harness are expected to), otherwise the remote host —
// so even anonymous clients are bounded per source address.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// clientEnqueue claims a queue slot for the client, or reports that the
// client is already at its per-client bound.
func (a *admission) clientEnqueue(key string) bool {
	if a.maxQueuedPerClient <= 0 {
		return true
	}
	a.cmu.Lock()
	defer a.cmu.Unlock()
	if a.queuedByClient[key] >= a.maxQueuedPerClient {
		return false
	}
	a.queuedByClient[key]++
	return true
}

// clientDequeue releases the client's queue slot.
func (a *admission) clientDequeue(key string) {
	if a.maxQueuedPerClient <= 0 {
		return
	}
	a.cmu.Lock()
	if a.queuedByClient[key] <= 1 {
		delete(a.queuedByClient, key)
	} else {
		a.queuedByClient[key]--
	}
	a.cmu.Unlock()
}

// retryAfterSeconds estimates when a slot is likely to free up: one
// "drain cycle" per full queue's worth of waiters ahead, and at least a
// second so clients cannot busy-spin.
func (a *admission) retryAfterSeconds() int {
	return 1 + int(a.queued.Load())/cap(a.tokens)
}

func (a *admission) shedRequest(w http.ResponseWriter, msg string) {
	a.shed.Add(1)
	secs := a.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	var gen int64
	if a.generation != nil {
		gen = a.generation()
	}
	writeErrorEnvelope(w, http.StatusTooManyRequests, &api.Error{
		Code:         api.ErrOverloaded,
		Message:      msg,
		RetryAfterMS: int64(secs) * 1000,
	}, gen)
}

// wrap gates h behind the admission queue. A nil *admission is a no-op,
// so handlers are wired identically whether gating is enabled or not.
func (a *admission) wrap(h http.HandlerFunc) http.HandlerFunc {
	if a == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case a.tokens <- struct{}{}:
			// Fast path: a slot was free.
			if a.waitDur != nil {
				a.waitDur.Observe(0)
			}
		default:
			key := clientKey(r)
			// The global bound is checked first so FairnessShed keeps its
			// stated meaning: sheds a request from any other client would
			// NOT have suffered. A full queue sheds everyone identically
			// and says nothing about per-client hogging.
			if q := a.queued.Add(1); q > a.maxQueued {
				a.queued.Add(-1)
				a.shedRequest(w, "admission queue full; retry after the indicated delay")
				return
			}
			if !a.clientEnqueue(key) {
				a.queued.Add(-1)
				a.fairShed.Add(1)
				a.shedRequest(w, "per-client queue bound reached; retry after the indicated delay")
				return
			}
			waitStart := time.Now()
			select {
			case a.tokens <- struct{}{}:
				a.queued.Add(-1)
				a.clientDequeue(key)
				wait := time.Since(waitStart)
				if a.waitDur != nil {
					a.waitDur.Observe(wait.Seconds())
				}
				// Queue wait lands in the request's trace timeline, so a
				// slow-request report distinguishes "the daemon was
				// saturated" from "the scan itself was slow".
				obs.TraceFrom(r.Context()).Observe("admission_wait", waitStart, wait, 1)
			case <-r.Context().Done():
				// The client gave up while queued; release the queue slot
				// without ever taking an inflight one.
				a.queued.Add(-1)
				a.clientDequeue(key)
				return
			}
		}
		a.admitted.Add(1)
		a.inflight.Add(1)
		defer func() {
			a.inflight.Add(-1)
			<-a.tokens
		}()
		h(w, r)
	}
}

// admitCost charges a request's cost weight against the gate's
// outstanding-cost budget, after the body is decoded (cost needs the
// request's shape) but before any expensive work. It returns a release
// func (call exactly once, normally deferred) and whether the request
// may proceed; on false the 429 has already been written.
//
// An idle gate (nothing outstanding) always admits, whatever the cost:
// a request bigger than the whole budget must still be servable, just
// never CONCURRENTLY with other work. Nil-safe like wrap.
func (a *admission) admitCost(w http.ResponseWriter, cost int64) (func(), bool) {
	if a == nil {
		return func() {}, true
	}
	if cost < 1 {
		cost = 1
	}
	for {
		cur := a.costOutstanding.Load()
		if a.maxCost > 0 && cur > 0 && cur+cost > a.maxCost {
			a.costShed.Add(1)
			a.shedRequest(w, fmt.Sprintf(
				"request cost %d would exceed the outstanding-cost budget (%d of %d in use); retry after the indicated delay",
				cost, cur, a.maxCost))
			return nil, false
		}
		if a.costOutstanding.CompareAndSwap(cur, cur+cost) {
			var once sync.Once
			return func() { once.Do(func() { a.costOutstanding.Add(-cost) }) }, true
		}
	}
}

// snapshot returns the current counters as the /stats wire shape, or
// nil when gating is off.
func (a *admission) snapshot() *api.AdmissionStats {
	if a == nil {
		return nil
	}
	a.cmu.Lock()
	clients := len(a.queuedByClient)
	a.cmu.Unlock()
	return &api.AdmissionStats{
		MaxInflight:        cap(a.tokens),
		MaxQueued:          a.maxQueued,
		MaxQueuedPerClient: a.maxQueuedPerClient,
		Inflight:           a.inflight.Load(),
		Queued:             a.queued.Load(),
		QueuedClients:      clients,
		Admitted:           a.admitted.Load(),
		Shed:               a.shed.Load(),
		FairnessShed:       a.fairShed.Load(),
		MaxCost:            a.maxCost,
		CostWeight:         a.costOutstanding.Load(),
		CostShed:           a.costShed.Load(),
	}
}
