package main

import (
	"net/http"
	"strconv"
	"sync/atomic"
)

// admission is the bounded two-stage gate in front of the scan-shaped
// endpoints (/scan, /batch, /changeset): at most maxInflight requests
// execute at once, at most maxQueued wait behind them, and everything
// beyond that is shed immediately with 429 + Retry-After. Shedding is
// the backpressure ROADMAP asked for — one client blasting /batch can
// fill the queue, but it cannot make the daemon buffer unbounded work or
// starve the accept loop, and a well-behaved client sees an honest
// retry hint instead of a hung connection.
//
// Admission is deliberately in front of the handler, not inside it: a
// shed request costs one atomic add and one small JSON write, never a
// checker compile or a codebase lock.
type admission struct {
	// tokens is the inflight semaphore; sends acquire, receives release.
	tokens    chan struct{}
	maxQueued int64
	queued    atomic.Int64
	inflight  atomic.Int64
	admitted  atomic.Int64
	shed      atomic.Int64
}

// newAdmission returns a gate admitting maxInflight concurrent requests
// with maxQueued waiters, or nil (no gating) when maxInflight <= 0.
func newAdmission(maxInflight, maxQueued int) *admission {
	if maxInflight <= 0 {
		return nil
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &admission{
		tokens:    make(chan struct{}, maxInflight),
		maxQueued: int64(maxQueued),
	}
}

// retryAfterSeconds estimates when a slot is likely to free up: one
// "drain cycle" per full queue's worth of waiters ahead, and at least a
// second so clients cannot busy-spin.
func (a *admission) retryAfterSeconds() int {
	return 1 + int(a.queued.Load())/cap(a.tokens)
}

// wrap gates h behind the admission queue. A nil *admission is a no-op,
// so handlers are wired identically whether gating is enabled or not.
func (a *admission) wrap(h http.HandlerFunc) http.HandlerFunc {
	if a == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case a.tokens <- struct{}{}:
			// Fast path: a slot was free.
		default:
			if q := a.queued.Add(1); q > a.maxQueued {
				a.queued.Add(-1)
				a.shed.Add(1)
				w.Header().Set("Retry-After", strconv.Itoa(a.retryAfterSeconds()))
				httpError(w, http.StatusTooManyRequests, "admission queue full; retry after the indicated delay")
				return
			}
			select {
			case a.tokens <- struct{}{}:
				a.queued.Add(-1)
			case <-r.Context().Done():
				// The client gave up while queued; release the queue slot
				// without ever taking an inflight one.
				a.queued.Add(-1)
				return
			}
		}
		a.admitted.Add(1)
		a.inflight.Add(1)
		defer func() {
			a.inflight.Add(-1)
			<-a.tokens
		}()
		h(w, r)
	}
}

// admissionStats is the GET /stats view of the gate.
type admissionStats struct {
	MaxInflight int   `json:"max_inflight"`
	MaxQueued   int64 `json:"max_queued"`
	Inflight    int64 `json:"inflight"`
	Queued      int64 `json:"queued"`
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`
}

// snapshot returns the current counters, or nil when gating is off.
func (a *admission) snapshot() *admissionStats {
	if a == nil {
		return nil
	}
	return &admissionStats{
		MaxInflight: cap(a.tokens),
		MaxQueued:   a.maxQueued,
		Inflight:    a.inflight.Load(),
		Queued:      a.queued.Load(),
		Admitted:    a.admitted.Load(),
		Shed:        a.shed.Load(),
	}
}
