package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"knighter/internal/api"
	"knighter/internal/kernel"
	"knighter/internal/minic"
	"knighter/internal/scan"
	"knighter/internal/store"
)

// newKcached boots an in-process kcached with the store composition
// cmd/kcached wires — memory front tier over the segment disk store —
// minus the flag parsing.
func newKcached(t *testing.T) (*store.SegmentDisk, *httptest.Server) {
	t.Helper()
	return newKcachedDir(t, t.TempDir())
}

// newKcachedDir is newKcached over an explicit cache directory, so a
// test can stop the daemon and boot a successor on the same segments.
func newKcachedDir(t *testing.T, dir string) (*store.SegmentDisk, *httptest.Server) {
	t.Helper()
	disk, err := store.NewSegmentDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	tier := store.NewTiered(store.NewMemory(0), disk)
	kc := httptest.NewServer(store.NewCacheServer(tier).Handler())
	t.Cleanup(kc.Close)
	return disk, kc
}

// newFleetReplica builds a kserve replica with the fleet store
// composition main() wires for -cache-remote: coalesced(memory ->
// remote). Each replica parses its own copy of the same corpus, like
// real replicas deployed from one image.
func newFleetReplica(t *testing.T, kcURL string, rcfg store.RemoteConfig) (*server, *httptest.Server) {
	t.Helper()
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.1})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := store.NewRemote(kcURL, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	var st store.Store = store.NewTiered(store.NewMemory(0), asyncInvalidate{remote})
	st = store.NewCoalesced(st)
	srv := newServer(scan.NewIncremental(cb, st))
	srv.remote = remote
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func reportsJSON(t *testing.T, resp *api.ScanResponse) string {
	t.Helper()
	data, err := json.Marshal(resp.Reports)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestFleetSecondReplicaScansWarm is the tentpole acceptance criterion:
// after replica A's cold scan, replica B's FIRST scan of the same corpus
// is answered almost entirely from the shared tier — byte-identical
// reports, >= 90% hit rate, zero remote errors.
func TestFleetSecondReplicaScansWarm(t *testing.T) {
	_, kc := newKcached(t)
	srvA, tsA := newFleetReplica(t, kc.URL, store.RemoteConfig{})
	srvB, tsB := newFleetReplica(t, kc.URL, store.RemoteConfig{})

	a := postScan(t, tsA, api.ScanRequest{Checker: testChecker})
	if a.Cache.Hits != 0 {
		t.Fatalf("replica A's cold scan hit %d times", a.Cache.Hits)
	}
	if rs := srvA.remote.RemoteStats(); rs.Puts == 0 {
		t.Fatalf("replica A published nothing to the shared tier: %+v", rs)
	}

	b := postScan(t, tsB, api.ScanRequest{Checker: testChecker})
	if b.Cache.HitRate < 0.9 {
		t.Fatalf("replica B's first scan hit rate = %.2f, want >= 0.9 (hits=%d misses=%d)",
			b.Cache.HitRate, b.Cache.Hits, b.Cache.Misses)
	}
	if got, want := reportsJSON(t, b), reportsJSON(t, a); got != want {
		t.Fatalf("replica B's warm scan differs from replica A's cold scan:\nA: %s\nB: %s", want, got)
	}
	rs := srvB.remote.RemoteStats()
	if rs.Hits == 0 || rs.Errors != 0 {
		t.Fatalf("replica B remote stats = %+v, want hits > 0 and no errors", rs)
	}

	// B's hits were promoted into its memory tier: a re-scan no longer
	// touches the network.
	before := srvB.remote.RemoteStats().Hits
	again := postScan(t, tsB, api.ScanRequest{Checker: testChecker})
	if again.Cache.Misses != 0 {
		t.Fatalf("replica B's re-scan missed %d times", again.Cache.Misses)
	}
	if after := srvB.remote.RemoteStats().Hits; after != before {
		t.Fatalf("re-scan went to the remote tier (%d -> %d hits)", before, after)
	}
}

// TestFleetKcachedDeathDegradesToLocal: killing the cache daemon
// mid-run must cause zero non-2xx scan responses — replicas degrade to
// their local tiers with misses, and the breaker stops them from paying
// a connection attempt per function.
func TestFleetKcachedDeathDegradesToLocal(t *testing.T) {
	_, kc := newKcached(t)
	rcfg := store.RemoteConfig{
		Timeout:          200 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Minute, // stays open for the rest of the test
	}
	_, tsA := newFleetReplica(t, kc.URL, rcfg)
	_, tsB := newFleetReplica(t, kc.URL, rcfg)

	a := postScan(t, tsA, api.ScanRequest{Checker: testChecker})

	kc.Close() // the daemon dies

	// A's entries are in its memory tier; B is completely cold and every
	// remote lookup fails. Both must still answer 200 with full results.
	a2 := postScan(t, tsA, api.ScanRequest{Checker: testChecker})
	if got, want := reportsJSON(t, a2), reportsJSON(t, a); got != want {
		t.Fatal("replica A's post-death scan differs from its pre-death scan")
	}
	b := postScan(t, tsB, api.ScanRequest{Checker: testChecker}) // postScan fails the test on any non-200
	if got, want := reportsJSON(t, b), reportsJSON(t, a); got != want {
		t.Fatal("replica B's local-only scan differs from replica A's")
	}
	if b.Cache.Hits != 0 {
		t.Fatalf("replica B hit %d entries with the daemon dead", b.Cache.Hits)
	}

	// The breaker opened and cut off traffic: B paid a handful of failed
	// round-trips (threshold plus whatever was in flight when it opened),
	// not one per function.
	stats := getStats(t, tsB)
	if stats.Remote == nil {
		t.Fatal("no remote stats on a fleet replica")
	}
	if !stats.Remote.BreakerOpen || stats.Remote.BreakerOpens == 0 {
		t.Fatalf("breaker did not open: %+v", stats.Remote)
	}
	if b.Cache.Misses < 20 {
		t.Fatalf("corpus too small to prove the breaker mattered: %d misses", b.Cache.Misses)
	}
	if stats.Remote.Errors >= int64(b.Cache.Misses)/2 {
		t.Fatalf("%d failed round-trips for %d misses; breaker did not cut off traffic",
			stats.Remote.Errors, b.Cache.Misses)
	}

	// And replica A keeps serving warm scans indefinitely.
	a3 := postScan(t, tsA, api.ScanRequest{Checker: testChecker})
	if a3.Cache.Misses != 0 {
		t.Fatalf("replica A's warm scan missed %d times after daemon death", a3.Cache.Misses)
	}
}

// TestFleetKcachedRestartRecoversWarm: stop the cache daemon, boot a
// successor over the same cache directory, and a FRESH replica's first
// scan must still be >= 90% warm — the segment store's recovery scan
// rebuilt the index from the log, so the fleet's accumulated work
// survives a daemon roll.
func TestFleetKcachedRestartRecoversWarm(t *testing.T) {
	dir := t.TempDir()
	disk1, kc1 := newKcachedDir(t, dir)

	srvA, tsA := newFleetReplica(t, kc1.URL, store.RemoteConfig{})
	a := postScan(t, tsA, api.ScanRequest{Checker: testChecker})
	if rs := srvA.remote.RemoteStats(); rs.Puts == 0 {
		t.Fatalf("replica A published nothing: %+v", rs)
	}
	entriesBefore := disk1.Stats().Entries
	if entriesBefore == 0 {
		t.Fatal("kcached disk tier empty after replica A's scan")
	}

	// The daemon dies (graceful: the real daemon syncs on SIGTERM; the
	// crash path — torn tail, unsynced window — is the segment engine's
	// own test territory).
	kc1.Close()
	if err := disk1.Close(); err != nil {
		t.Fatal(err)
	}

	// A successor boots on the same directory: recovery is one
	// sequential segment scan, and every entry must come back.
	disk2, kc2 := newKcachedDir(t, dir)
	if got := disk2.Stats().Entries; got != entriesBefore {
		t.Fatalf("restart recovered %d entries, want %d", got, entriesBefore)
	}

	// A replica that never scanned before (cold memory, no local disk)
	// must scan warm off the recovered tier, byte-identical to A.
	srvC, tsC := newFleetReplica(t, kc2.URL, store.RemoteConfig{})
	c := postScan(t, tsC, api.ScanRequest{Checker: testChecker})
	if c.Cache.HitRate < 0.9 {
		t.Fatalf("post-restart scan hit rate = %.2f, want >= 0.9 (hits=%d misses=%d)",
			c.Cache.HitRate, c.Cache.Hits, c.Cache.Misses)
	}
	if rs := srvC.remote.RemoteStats(); rs.Hits == 0 || rs.Errors != 0 {
		t.Fatalf("replica C remote stats = %+v, want hits > 0 and no errors", rs)
	}
	if got, want := reportsJSON(t, c), reportsJSON(t, a); got != want {
		t.Fatalf("post-restart warm scan differs from the pre-restart cold scan:\nA: %s\nC: %s", want, got)
	}
}

// TestFleetChangesetInvalidatesSharedTier: a /changeset on replica A
// fans its orphaned hashes out to kcached, and a replica that applies
// the same changeset scans correctly afterwards — no stale shared
// results.
func TestFleetChangesetInvalidatesSharedTier(t *testing.T) {
	disk, kc := newKcached(t)
	srvA, tsA := newFleetReplica(t, kc.URL, store.RemoteConfig{})
	_, tsB := newFleetReplica(t, kc.URL, store.RemoteConfig{})

	postScan(t, tsA, api.ScanRequest{Checker: testChecker}) // warm the shared tier
	sharedBefore := disk.Stats().Entries
	if sharedBefore == 0 {
		t.Fatal("shared tier empty after replica A's scan")
	}

	// Patch the last function of the first file on both replicas (the
	// fleet deployment model: an orchestrator applies each commit to
	// every replica).
	cb := srvA.inc.Codebase()
	path := cb.Files()[0].Name
	fn := cb.Files()[0].Funcs[len(cb.Files()[0].Funcs)-1]
	src := minic.FormatFunc(fn)
	brace := strings.Index(src, "{")
	src = src[:brace+1] + "\n\tint fleet_probe;" + src[brace+1:]
	change := api.ChangesetRequest{Changes: []api.Change{{Path: path, Func: fn.Name, Source: src}}}

	var csA api.ChangesetResponse
	if code := postJSON(t, tsA, "/changeset", change, &csA); code != http.StatusOK {
		t.Fatalf("changeset on A: status %d", code)
	}
	if csA.StoreInvalidated == 0 {
		t.Fatal("changeset invalidated nothing despite a warm shared tier")
	}
	// Remote invalidation is fired asynchronously (asyncInvalidate keeps
	// the network round-trip out of the corpus write lock), so poll for
	// it rather than asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for disk.Stats().Invalidated == 0 {
		if time.Now().After(deadline) {
			t.Fatal("invalidation did not reach kcached")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code := postJSON(t, tsB, "/changeset", change, nil); code != http.StatusOK {
		t.Fatal("changeset on B failed")
	}

	// Ground truth: an isolated replica (no shared tier) built from the
	// same corpus with the same changeset applied.
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.1})
	cbRef, err := scan.NewCodebase(corpus)
	if err != nil {
		t.Fatal(err)
	}
	refSrv := newServer(scan.NewIncremental(cbRef, store.NewMemory(0)))
	tsRef := httptest.NewServer(refSrv.routes())
	t.Cleanup(tsRef.Close)
	if code := postJSON(t, tsRef, "/changeset", change, nil); code != http.StatusOK {
		t.Fatal("changeset on reference replica failed")
	}
	want := reportsJSON(t, postScan(t, tsRef, api.ScanRequest{Checker: testChecker}))

	if got := reportsJSON(t, postScan(t, tsB, api.ScanRequest{Checker: testChecker})); got != want {
		t.Fatalf("replica B served stale results after the changeset:\nwant %s\ngot  %s", want, got)
	}
	if got := reportsJSON(t, postScan(t, tsA, api.ScanRequest{Checker: testChecker})); got != want {
		t.Fatal("replica A served stale results after its own changeset")
	}
}

// TestFleetConcurrentColdScansCoalesce: two replicas' worth of identical
// concurrent scans on ONE replica share computations via the coalescing
// tier instead of analyzing every function twice.
func TestFleetConcurrentColdScansCoalesce(t *testing.T) {
	_, kc := newKcached(t)
	srv, ts := newFleetReplica(t, kc.URL, store.RemoteConfig{})

	// t.Fatal must not run off the test goroutine, so workers record an
	// error and the test goroutine fails after the barrier.
	const n = 4
	var wg sync.WaitGroup
	responses := make([]*api.ScanResponse, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := json.Marshal(api.ScanRequest{Checker: testChecker})
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("POST /scan status = %d", resp.StatusCode)
				return
			}
			var out api.ScanResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			responses[i] = &out
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent scan %d: %v", i, err)
		}
	}
	want := reportsJSON(t, responses[0])
	for i := 1; i < n; i++ {
		if reportsJSON(t, responses[i]) != want {
			t.Fatalf("concurrent scan %d differs", i)
		}
	}
	// The coalescing counter is cumulative in the store stats; with n
	// identical concurrent cold scans there is ample overlap unless the
	// scans happened to serialize (possible on a loaded machine, so only
	// assert when at least two scans genuinely overlapped on a miss).
	st := srv.inc.Stats()
	totalCoalesced := 0
	for _, r := range responses {
		totalCoalesced += r.Cache.Coalesced
	}
	if int64(totalCoalesced) != st.Coalesced {
		t.Fatalf("per-response coalesce counts (%d) disagree with store counter (%d)",
			totalCoalesced, st.Coalesced)
	}
}
