package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"knighter/internal/api"
	"knighter/internal/minic"
)

// TestAsyncChangesetEndpoint: POST /changeset {"async": true} answers
// 202 with a generation token before the commit lands; the token is
// pollable on /changeset/status through pending → committed, and a
// min_generation scan on the token reads the writer's own write.
func TestAsyncChangesetEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	cb := srv.inc.Codebase()
	path := cb.Files()[0].Name
	canonical := minic.FormatFile(cb.Files()[0])

	var acc api.ChangesetResponse
	code := postJSON(t, ts, "/changeset", api.ChangesetRequest{
		Changes: []api.Change{{Path: path, Source: canonical}},
		Async:   true,
	}, &acc)
	if code != http.StatusAccepted {
		t.Fatalf("async changeset status = %d, want 202", code)
	}
	if !acc.Async || acc.Status != api.StatusPending {
		t.Fatalf("async accept = %+v, want async pending", acc)
	}
	if acc.Generation != cb.Generation()+1 && acc.Generation != cb.Generation() {
		t.Fatalf("token %d is not the next generation (live %d)", acc.Generation, cb.Generation())
	}

	// Read-your-writes: a scan at the token's generation serves at or
	// after it (kserve waits, bounded by -min-gen-wait).
	scanned := postScan(t, ts, api.ScanRequest{Checker: testChecker, MinGeneration: acc.Generation})
	if scanned.Generation < acc.Generation {
		t.Fatalf("min_generation scan served generation %d, want >= %d", scanned.Generation, acc.Generation)
	}

	// The ledger converges to committed with the commit's accounting.
	var st api.ChangesetStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/changeset/status?generation=" + strconv.FormatInt(acc.Generation, 10))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/changeset/status = %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Status != api.StatusPending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("async changeset still pending after 5s: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Status != api.StatusCommitted || st.Generation != acc.Generation || st.Ops != 1 {
		t.Fatalf("settled status = %+v, want committed generation %d with 1 op", st, acc.Generation)
	}

	// A failed async changeset burns its token: status reports failed,
	// and the generation still resolves for min_generation waiters.
	code = postJSON(t, ts, "/changeset", api.ChangesetRequest{
		Changes: []api.Change{{Path: path, Source: "int broken("}},
		Async:   true,
	}, &acc)
	if code != http.StatusAccepted {
		t.Fatalf("async bad changeset status = %d, want 202 (failure is deferred)", code)
	}
	for {
		resp, err := http.Get(ts.URL + "/changeset/status?generation=" + strconv.FormatInt(acc.Generation, 10))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Status != api.StatusPending {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failed async changeset still pending: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Status != api.StatusFailed || st.Error == "" {
		t.Fatalf("settled status = %+v, want failed with an error", st)
	}
	if got := postScan(t, ts, api.ScanRequest{Checker: testChecker, MinGeneration: acc.Generation}); got.Generation < acc.Generation {
		t.Fatalf("burned generation %d never became visible (scan saw %d)", acc.Generation, got.Generation)
	}

	// Unknown tokens 404 with the error envelope.
	resp, err := http.Get(ts.URL + "/changeset/status?generation=99999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown token status = %d, want 404", resp.StatusCode)
	}
	var envelope api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Err == nil || envelope.Err.Code != api.ErrNotFound || envelope.LegacyError == "" {
		t.Fatalf("unknown token envelope = %+v, want code %q with legacy error", envelope, api.ErrNotFound)
	}
}

// TestMinGenerationUnsatisfiable: a min_generation the corpus cannot
// reach within -min-gen-wait answers 409 with the envelope's
// generation_unavailable code, a retry hint, and the current generation
// in the X-KN-Generation header.
func TestMinGenerationUnsatisfiable(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.minGenWait = 50 * time.Millisecond

	data, _ := json.Marshal(api.ScanRequest{
		Checker: testChecker, MinGeneration: srv.inc.Codebase().Generation() + 100,
	})
	resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unsatisfiable min_generation = %d, want 409", resp.StatusCode)
	}
	var envelope api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Err == nil || envelope.Err.Code != api.ErrGenerationUnavailable {
		t.Fatalf("envelope = %+v, want code %q", envelope, api.ErrGenerationUnavailable)
	}
	if envelope.Err.RetryAfterMS <= 0 {
		t.Fatalf("409 carries no retry hint: %+v", envelope.Err)
	}
	gotGen, err := strconv.ParseInt(resp.Header.Get(api.GenerationHeader), 10, 64)
	if err != nil || gotGen != srv.inc.Codebase().Generation() {
		t.Fatalf("%s header = %q, want live generation %d",
			api.GenerationHeader, resp.Header.Get(api.GenerationHeader), srv.inc.Codebase().Generation())
	}
}

// TestGenerationHeaderOnResponses: every response class carries the
// generation it was served against in X-KN-Generation.
func TestGenerationHeaderOnResponses(t *testing.T) {
	_, ts := newTestServer(t)
	for _, path := range []string{"/stats", "/healthz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.Header.Get(api.GenerationHeader) == "" {
			t.Fatalf("GET %s response has no %s header", path, api.GenerationHeader)
		}
	}
	data, _ := json.Marshal(api.ScanRequest{Checker: testChecker})
	resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(api.GenerationHeader) == "" {
		t.Fatalf("POST /scan response has no %s header", api.GenerationHeader)
	}
}

// TestStressScanDuringChangesetStorm is the split-gate acceptance
// criterion: with writes gated to one inflight slot and a changeset
// storm saturating it, reads NEVER shed — every /scan admitted during
// the storm completes with 200 against some pinned generation. Run
// under -race in CI.
func TestStressScanDuringChangesetStorm(t *testing.T) {
	srv, ts := newTestServerWithGates(t, newAdmission(4, 64, 0), newAdmission(1, 4, 0))
	cb := srv.inc.Codebase()
	path := cb.Files()[0].Name
	canonical := minic.FormatFile(cb.Files()[0])

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				data, _ := json.Marshal(api.ChangesetRequest{
					Changes: []api.Change{{Path: path, Source: canonical}},
					Async:   true,
				})
				resp, err := http.Post(ts.URL+"/changeset", "application/json", bytes.NewReader(data))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}

	const clients = 4
	const iters = 8
	var shed429 atomic.Int64
	var readErrs atomic.Int64
	var readers sync.WaitGroup
	for g := 0; g < clients; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < iters; i++ {
				data, _ := json.Marshal(api.ScanRequest{Checker: testChecker})
				resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
				if err != nil {
					readErrs.Add(1)
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					shed429.Add(1)
				default:
					readErrs.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()

	if n := shed429.Load(); n != 0 {
		t.Fatalf("%d reads shed 429 during the write storm; writes must not gate reads", n)
	}
	if n := readErrs.Load(); n != 0 {
		t.Fatalf("%d reads failed during the write storm", n)
	}
	stats := getStats(t, ts)
	if stats.Admission.Shed != 0 {
		t.Fatalf("read gate shed %d requests during a write-only storm", stats.Admission.Shed)
	}
}
