// Command kserve is the incremental scan service: an HTTP daemon that
// holds a parsed codebase and a shared content-addressed analysis cache
// in memory, so many checker runs amortize one parse and one cache.
//
// This is the deployment shape the paper's §5 scans want: checker
// synthesis and refinement issue many near-identical scans of the same
// tree, and a warm daemon answers repeats from cache instead of
// re-executing the analyzer.
//
// Usage:
//
//	kserve                         # serve the synthetic corpus on :8321
//	kserve -addr :9000 -scale 0.5
//	kserve -cache-dir /var/cache/kserve   # add a persistent disk tier
//
// Endpoints:
//
//	POST /scan     {"checker": "<DSL text>", "files": [...], "max_reports": n}
//	GET  /stats    cache + service counters
//	GET  /healthz  liveness
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/kernel"
	"knighter/internal/scan"
	"knighter/internal/store"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	seed := flag.Int64("seed", 1, "corpus seed")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	cacheEntries := flag.Int("cache-entries", 0, "in-memory cache capacity (0 = default)")
	cacheDir := flag.String("cache-dir", "", "optional on-disk cache tier directory")
	flag.Parse()

	corpus := kernel.Generate(kernel.Config{Seed: *seed, Scale: *scale})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kserve:", err)
		os.Exit(1)
	}
	var st store.Store = store.NewMemory(*cacheEntries)
	if *cacheDir != "" {
		disk, err := store.NewDisk(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kserve:", err)
			os.Exit(1)
		}
		st = store.NewTiered(st, disk)
	}
	srv := newServer(scan.NewIncremental(cb, st))
	log.Printf("kserve: serving %d files / %d functions on %s", len(cb.Files), srv.funcs, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// server holds the warm codebase, the shared store, and service
// counters.
type server struct {
	inc     *scan.Incremental
	started time.Time
	funcs   int

	scans         atomic.Int64
	scanErrors    atomic.Int64
	reportsServed atomic.Int64
}

func newServer(inc *scan.Incremental) *server {
	s := &server{inc: inc, started: time.Now()}
	for _, f := range inc.Codebase().Files {
		s.funcs += len(f.Funcs)
	}
	return s
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/scan", s.handleScan)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// scanRequest is the POST /scan body.
type scanRequest struct {
	// Checker is the checker-DSL program text.
	Checker string `json:"checker"`
	// Files optionally restricts the scan to these corpus paths.
	Files []string `json:"files,omitempty"`
	// MaxReports caps collected reports (0 = unlimited).
	MaxReports int `json:"max_reports,omitempty"`
	// Workers overrides the parallelism degree (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// IncludeTrace adds the per-report path trace to the response.
	IncludeTrace bool `json:"include_trace,omitempty"`
}

// reportJSON is one bug report on the wire.
type reportJSON struct {
	Checker string      `json:"checker"`
	BugType string      `json:"bug_type"`
	Message string      `json:"message"`
	File    string      `json:"file"`
	Func    string      `json:"func"`
	Line    int         `json:"line"`
	Col     int         `json:"col"`
	Region  string      `json:"region,omitempty"`
	Trace   []traceJSON `json:"trace,omitempty"`
}

type traceJSON struct {
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Note string `json:"note"`
}

// cacheJSON reports per-request cache effectiveness.
type cacheJSON struct {
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// scanResponse is the POST /scan reply.
type scanResponse struct {
	Checker      string       `json:"checker"`
	Reports      []reportJSON `json:"reports"`
	FilesScanned int          `json:"files_scanned"`
	FuncsScanned int          `json:"funcs_scanned"`
	RuntimeErrs  []string     `json:"runtime_errs,omitempty"`
	Truncated    bool         `json:"truncated"`
	Cache        cacheJSON    `json:"cache"`
	ElapsedMS    float64      `json:"elapsed_ms"`
}

func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req scanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Checker == "" {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "missing 'checker' (DSL text)")
		return
	}
	ck, err := ckdsl.CompileSource(req.Checker)
	if err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusUnprocessableEntity, "checker does not compile: "+err.Error())
		return
	}
	cb := s.inc.Codebase()
	files := make([]int, 0, len(cb.Files))
	if len(req.Files) == 0 {
		for i := range cb.Files {
			files = append(files, i)
		}
	} else {
		for _, path := range req.Files {
			i := cb.FileIndex(path)
			if i < 0 {
				s.scanErrors.Add(1)
				httpError(w, http.StatusNotFound, "unknown file: "+path)
				return
			}
			files = append(files, i)
		}
	}

	start := time.Now()
	res := s.inc.RunFiles(files, []checker.Checker{ck}, scan.Options{
		Workers:    req.Workers,
		MaxReports: req.MaxReports,
	})
	elapsed := time.Since(start)

	resp := &scanResponse{
		Checker:      ck.Name(),
		Reports:      make([]reportJSON, 0, len(res.Reports)),
		FilesScanned: res.FilesScanned,
		FuncsScanned: res.FuncsScanned,
		Truncated:    res.Truncated,
		Cache: cacheJSON{
			Hits:    res.CacheHits,
			Misses:  res.CacheMisses,
			HitRate: store.Stats{Hits: int64(res.CacheHits), Misses: int64(res.CacheMisses)}.HitRate(),
		},
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	for _, rep := range res.Reports {
		rj := reportJSON{
			Checker: rep.Checker, BugType: rep.BugType, Message: rep.Message,
			File: rep.File, Func: rep.Func, Line: rep.Pos.Line, Col: rep.Pos.Col,
			Region: rep.RegionAt,
		}
		if req.IncludeTrace {
			for _, t := range rep.Trace {
				rj.Trace = append(rj.Trace, traceJSON{Line: t.Pos.Line, Col: t.Pos.Col, Note: t.Note})
			}
		}
		resp.Reports = append(resp.Reports, rj)
	}
	for _, re := range res.RuntimeErrs {
		resp.RuntimeErrs = append(resp.RuntimeErrs, re.Error())
	}
	s.scans.Add(1)
	s.reportsServed.Add(int64(len(resp.Reports)))
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Files         int         `json:"files"`
	Funcs         int         `json:"funcs"`
	Scans         int64       `json:"scans"`
	ScanErrors    int64       `json:"scan_errors"`
	ReportsServed int64       `json:"reports_served"`
	Store         store.Stats `json:"store"`
	StoreHitRate  float64     `json:"store_hit_rate"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.inc.Stats()
	writeJSON(w, http.StatusOK, &statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Files:         len(s.inc.Codebase().Files),
		Funcs:         s.funcs,
		Scans:         s.scans.Load(),
		ScanErrors:    s.scanErrors.Load(),
		ReportsServed: s.reportsServed.Load(),
		Store:         st,
		StoreHitRate:  st.HitRate(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "files": len(s.inc.Codebase().Files)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("kserve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
