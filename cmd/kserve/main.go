// Command kserve is the incremental scan service: an HTTP daemon that
// holds a parsed codebase and a shared content-addressed analysis cache
// in memory, so many checker runs amortize one parse and one cache.
//
// This is the deployment shape the paper's §5 scans want: checker
// synthesis and refinement issue many near-identical scans of the same
// tree, and a warm daemon answers repeats from cache instead of
// re-executing the analyzer. The corpus is mutable in place — POST
// /patch applies a single-file code update, POST /changeset applies a
// commit-sized multi-file changeset atomically (one drain, one
// generation bump), and only the touched functions go cold. POST /batch
// evaluates N checker revisions in one request over a bounded worker
// pool (StaAgent-style many-revision evaluation).
//
// The scan-shaped endpoints sit behind a bounded admission queue
// (-max-inflight, -max-queued): excess load is shed with 429 +
// Retry-After instead of being buffered without bound, so one client
// cannot monopolize the daemon.
//
// Usage:
//
//	kserve                         # serve the synthetic corpus on :8321
//	kserve -addr :9000 -scale 0.5
//	kserve -cache-dir /var/cache/kserve -cache-ttl 72h -cache-max-bytes 268435456
//	kserve -cache-remote http://cache-host:8322   # share results fleet-wide via kcached
//	kserve -func-timeout 2s        # default per-function analysis budget
//	kserve -max-inflight 8 -max-queued 32 -max-queued-per-client 4
//
// Endpoints:
//
//	POST /scan      {"checker": "<DSL text>", "files": [...], "max_reports": n}
//	POST /batch     {"checkers": ["<DSL>", ...], "concurrency": n, ...}
//	POST /patch     {"path": "...", "func": "...", "source": "..."}
//	POST /changeset {"changes": [{"path", "func?", "source"}, ...]}
//	GET  /stats     cache + service + admission counters
//	GET  /healthz   liveness
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/kernel"
	"knighter/internal/obs"
	"knighter/internal/scan"
	"knighter/internal/store"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	seed := flag.Int64("seed", 1, "corpus seed")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory cache budget in serialized bytes (0 = default 64 MiB)")
	cacheDir := flag.String("cache-dir", "", "optional on-disk cache tier directory")
	cacheTTL := flag.Duration("cache-ttl", 0, "drop disk-tier entries older than this (0 = keep forever)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "disk-tier byte budget; GC evicts oldest-first past it (0 = unbounded)")
	cacheRemote := flag.String("cache-remote", "", "optional kcached URL for the shared fleet cache tier (e.g. http://cache-host:8322)")
	cacheRemoteTimeout := flag.Duration("cache-remote-timeout", 2*time.Second, "per-request budget for the remote tier")
	funcTimeout := flag.Duration("func-timeout", 0, "default per-function analysis budget (0 = none)")
	maxInflight := flag.Int("max-inflight", runtime.GOMAXPROCS(0), "max concurrent scan-shaped requests (0 = unlimited, no admission control)")
	maxQueued := flag.Int("max-queued", 64, "max requests waiting for an inflight slot before shedding with 429")
	maxQueuedPerClient := flag.Int("max-queued-per-client", 16, "max queued requests per client key (X-Client-ID header or remote address; 0 = unbounded)")
	slowScan := flag.Duration("slow-scan", 0, "log a structured slow-request report (trace id + stage timeline) for requests slower than this (0 = off)")
	pprofAddr := flag.String("pprof-addr", "", "optional side listen address for net/http/pprof (e.g. localhost:6060); never exposed on the main port")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		v, gv := obs.BuildVersion()
		fmt.Printf("kserve %s (%s)\n", v, gv)
		return
	}

	corpus := kernel.Generate(kernel.Config{Seed: *seed, Scale: *scale})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kserve:", err)
		os.Exit(1)
	}
	// Tier composition: memory in front, then the shared remote tier,
	// then the local disk tier — so a local miss is answered by the
	// fleet before falling back to this replica's own disk, and every
	// local computation is published for the siblings. The whole stack
	// is wrapped in singleflight coalescing: identical concurrent misses
	// (whose window the remote round-trip widens) compute once. Every
	// tier is individually instrumented into the shared registry, so
	// /metrics breaks hits, misses, and latency down by WHERE.
	reg := obs.NewRegistry("kserve")
	var disk *store.Disk
	var remote *store.Remote
	var back []store.Store
	if *cacheRemote != "" {
		remote, err = store.NewRemote(*cacheRemote, store.RemoteConfig{Timeout: *cacheRemoteTimeout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kserve:", err)
			os.Exit(1)
		}
		back = append(back, store.Instrument(reg, "remote", asyncInvalidate{remote}))
	}
	if *cacheDir != "" {
		var opts []store.DiskOption
		if *cacheMaxBytes > 0 {
			opts = append(opts, store.DiskMaxBytes(*cacheMaxBytes))
		}
		disk, err = store.NewDisk(*cacheDir, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kserve:", err)
			os.Exit(1)
		}
		back = append(back, store.Instrument(reg, "disk", disk))
	} else if *cacheMaxBytes > 0 {
		log.Printf("kserve: -cache-max-bytes ignored without -cache-dir (the byte budget bounds the disk tier; use -cache-bytes for the memory tier)")
	}
	// The local tiers sample latency 1-in-16: a memory hit costs about
	// as much as reading the clock, so full timing there would be the
	// observability layer taxing the very path it exists to protect.
	var st store.Store = store.Instrument(reg, "memory", store.NewMemory(*cacheBytes)).SampleLatency(4)
	switch len(back) {
	case 1:
		st = store.NewTiered(st, back[0])
	case 2:
		st = store.NewTiered(st, store.NewTiered(back[0], back[1]))
	}
	st = store.Instrument(reg, "coalesced", store.NewCoalesced(st)).SampleLatency(4)
	srv := newServer(scan.NewIncremental(cb, st))
	srv.remote = remote
	srv.funcTimeout = *funcTimeout
	srv.slowScan = *slowScan
	srv.adm = newAdmission(*maxInflight, *maxQueued, *maxQueuedPerClient)
	srv.registerMetrics(reg)
	if disk != nil && (*cacheTTL > 0 || *cacheMaxBytes > 0) {
		srv.startDiskGC(disk, *cacheTTL)
	}
	if remote != nil {
		log.Printf("kserve: fleet cache tier: %s", *cacheRemote)
	}
	if srv.adm != nil {
		log.Printf("kserve: admission control: %d inflight, %d queued", *maxInflight, *maxQueued)
	}
	if *pprofAddr != "" {
		startPprof("kserve", *pprofAddr)
	}

	// Graceful shutdown: SIGTERM/SIGINT stops the listener, in-flight
	// requests drain (bounded), and the daemon logs its final counters —
	// so a fleet roll never truncates a scan mid-response and the last
	// cache numbers survive in the log.
	hs := &http.Server{Addr: *addr, Handler: srv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	version, goVersion := obs.BuildVersion()
	log.Printf("kserve: %s (%s) serving %d files / %d functions on %s",
		version, goVersion, len(cb.Files), cb.NumFuncs(), *addr)
	select {
	case err := <-errCh:
		log.Fatal("kserve: ", err)
	case <-ctx.Done():
		stop()
		log.Printf("kserve: shutdown signal; draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("kserve: shutdown: %v", err)
		}
		stats := srv.inc.Stats()
		log.Printf("kserve: final stats: uptime=%.1fs scans=%d batches=%d reports=%d cache_hits=%d cache_misses=%d hit_rate=%.3f",
			time.Since(srv.started).Seconds(), srv.scans.Load(), srv.batches.Load(),
			srv.reportsServed.Load(), stats.Hits, stats.Misses, stats.HitRate())
	}
}

// startPprof serves net/http/pprof on its own listener — never the main
// port, so profiling endpoints are reachable only where the operator
// points them (typically localhost).
func startPprof(name, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		log.Printf("%s: pprof on %s", name, addr)
		if err := http.ListenAndServe(addr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("%s: pprof: %v", name, err)
		}
	}()
}

// server holds the warm codebase, the shared store, and service
// counters.
type server struct {
	inc     *scan.Incremental
	started time.Time
	// funcTimeout is the default per-function analysis budget applied
	// when a request does not set its own.
	funcTimeout time.Duration
	// adm gates the scan-shaped endpoints; nil = no admission control.
	adm *admission
	// remote is the shared fleet cache tier, when -cache-remote is set;
	// kept for /stats health reporting.
	remote *store.Remote
	// metrics is the /metrics instrumentation, nil until registerMetrics.
	metrics *serverMetrics
	// slowScan, when > 0, triggers the structured slow-request log line
	// (trace id + stage timeline) for requests slower than it.
	slowScan time.Duration
	// accessLog overrides the destination of per-request log lines
	// (tests inject one; nil = the process logger).
	accessLog *log.Logger

	// mu serializes corpus mutations against scans: /scan and /batch
	// hold the read lock, /patch and /changeset the write lock — so a
	// mutation waits for in-flight requests to drain and a batch never
	// sees a half-updated corpus between its checkers. (scan.Codebase has
	// its own internal lock; this one widens the critical section to a
	// whole request.)
	mu sync.RWMutex

	scans         atomic.Int64
	batches       atomic.Int64
	patches       atomic.Int64
	changesets    atomic.Int64
	scanErrors    atomic.Int64
	scansCanceled atomic.Int64
	reportsServed atomic.Int64
	gcRemoved     atomic.Int64
}

func newServer(inc *scan.Incremental) *server {
	return &server{inc: inc, started: time.Now()}
}

// asyncInvalidate wraps the remote tier so corpus mutations never hold
// the server's write lock across a network round-trip: /patch and
// /changeset invalidate the store while every scan waits on s.mu, and a
// slow or dead kcached would otherwise stall them all for the remote
// timeout. Safe to defer because remote invalidation is garbage
// collection, not a correctness mechanism — content addressing means
// the orphaned keys can never be requested again (the daemon's doc
// comment states the same contract). Gets, Puts, and Stats pass through
// synchronously.
type asyncInvalidate struct{ *store.Remote }

func (a asyncInvalidate) InvalidateFunc(funcHash string) int {
	go a.Remote.InvalidateFunc(funcHash)
	return 0
}

func (a asyncInvalidate) InvalidateFuncs(funcHashes []string) int {
	go a.Remote.InvalidateFuncs(funcHashes)
	return 0
}

// startDiskGC runs the store's GC loop over the disk tier, hooking the
// server's counter and log line into each sweep.
func (s *server) startDiskGC(disk *store.Disk, ttl time.Duration) {
	disk.StartGCLoop(ttl, func(n int, dur time.Duration, err error) {
		s.observeGCSweep(dur)
		if err != nil {
			log.Printf("kserve: disk GC: %v", err)
		} else if n > 0 {
			s.gcRemoved.Add(int64(n))
			log.Printf("kserve: disk GC removed %d entries in %s", n, dur)
		}
	})
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	// Every endpoint that takes the request lock goes through admission
	// control — including /patch: a pending write-lock waiter blocks all
	// new read-lock acquisitions, so an ungated patch flood would starve
	// every scan while itself never being shed. Only /stats and /healthz
	// stay outside the gate: they must answer even when the daemon is
	// saturated (that is when an operator needs them most).
	// withObs sits OUTSIDE the gate: the trace exists before the request
	// queues (so admission_wait lands on the timeline) and the measured
	// latency is what the client saw, queueing included.
	mux.HandleFunc("/scan", s.withObs("scan", s.adm.wrap(s.handleScan)))
	mux.HandleFunc("/batch", s.withObs("batch", s.adm.wrap(s.handleBatch)))
	mux.HandleFunc("/changeset", s.withObs("changeset", s.adm.wrap(s.handleChangeset)))
	mux.HandleFunc("/patch", s.withObs("patch", s.adm.wrap(s.handlePatch)))
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.metrics == nil {
			httpError(w, http.StatusNotFound, "metrics not registered")
			return
		}
		s.metrics.reg.Handler().ServeHTTP(w, r)
	})
	return mux
}

// scanRequest is the POST /scan body.
type scanRequest struct {
	// Checker is the checker-DSL program text.
	Checker string `json:"checker"`
	// Files optionally restricts the scan to these corpus paths.
	Files []string `json:"files,omitempty"`
	// MaxReports caps collected reports (0 = unlimited).
	MaxReports int `json:"max_reports,omitempty"`
	// Workers overrides the parallelism degree (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// FuncTimeoutMS overrides the server's per-function analysis budget
	// in milliseconds (0 = server default).
	FuncTimeoutMS int `json:"func_timeout_ms,omitempty"`
	// IncludeTrace adds the per-report path trace to the response.
	IncludeTrace bool `json:"include_trace,omitempty"`
	// IncludeTiming adds the request's trace id and per-stage span
	// timeline to the response — the same timeline the slow-request log
	// prints, on demand.
	IncludeTiming bool `json:"include_timing,omitempty"`
}

// reportJSON is one bug report on the wire.
type reportJSON struct {
	Checker string      `json:"checker"`
	BugType string      `json:"bug_type"`
	Message string      `json:"message"`
	File    string      `json:"file"`
	Func    string      `json:"func"`
	Line    int         `json:"line"`
	Col     int         `json:"col"`
	Region  string      `json:"region,omitempty"`
	Trace   []traceJSON `json:"trace,omitempty"`
}

type traceJSON struct {
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Note string `json:"note"`
}

// cacheJSON reports per-request cache effectiveness.
type cacheJSON struct {
	Hits    int     `json:"hits"`
	Misses  int     `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	// Coalesced counts misses served by sharing another request's
	// in-flight computation of the same key.
	Coalesced int `json:"coalesced,omitempty"`
}

func cacheOf(res *scan.Result) cacheJSON {
	return cacheJSON{
		Hits:      res.CacheHits,
		Misses:    res.CacheMisses,
		HitRate:   store.Stats{Hits: int64(res.CacheHits), Misses: int64(res.CacheMisses)}.HitRate(),
		Coalesced: res.CacheCoalesced,
	}
}

// scanResponse is the POST /scan reply, and one entry of POST /batch.
type scanResponse struct {
	Checker      string       `json:"checker"`
	Error        string       `json:"error,omitempty"`
	Reports      []reportJSON `json:"reports"`
	FilesScanned int          `json:"files_scanned"`
	FuncsScanned int          `json:"funcs_scanned"`
	RuntimeErrs  []string     `json:"runtime_errs,omitempty"`
	Truncated    bool         `json:"truncated"`
	Canceled     bool         `json:"canceled,omitempty"`
	TimedOut     int          `json:"funcs_timed_out,omitempty"`
	Cache        cacheJSON    `json:"cache"`
	ElapsedMS    float64      `json:"elapsed_ms"`
	// TraceID and Timing are present when the request asked for
	// include_timing: the request's trace id (echoed in the X-Trace-Id
	// response header too) and its per-stage span timeline.
	TraceID string     `json:"trace_id,omitempty"`
	Timing  []obs.Span `json:"timing,omitempty"`
}

// attachTiming copies the request trace's id and span timeline into the
// response when the client asked for it.
func attachTiming(ctx context.Context, id *string, spans *[]obs.Span, want bool) {
	if !want {
		return
	}
	if tr := obs.TraceFrom(ctx); tr != nil {
		*id = tr.ID
		*spans = tr.Spans()
	}
}

func (s *server) toScanResponse(name string, res *scan.Result, includeTrace bool) *scanResponse {
	resp := &scanResponse{
		Checker:      name,
		Reports:      make([]reportJSON, 0, len(res.Reports)),
		FilesScanned: res.FilesScanned,
		FuncsScanned: res.FuncsScanned,
		Truncated:    res.Truncated,
		Canceled:     res.Canceled,
		TimedOut:     res.FuncsTimedOut,
		Cache:        cacheOf(res),
		// The scan's own wall time: for a batch entry this is the
		// individual checker's cost, not the whole batch's.
		ElapsedMS: float64(res.Elapsed.Microseconds()) / 1000,
	}
	for _, rep := range res.Reports {
		rj := reportJSON{
			Checker: rep.Checker, BugType: rep.BugType, Message: rep.Message,
			File: rep.File, Func: rep.Func, Line: rep.Pos.Line, Col: rep.Pos.Col,
			Region: rep.RegionAt,
		}
		if includeTrace {
			for _, t := range rep.Trace {
				rj.Trace = append(rj.Trace, traceJSON{Line: t.Pos.Line, Col: t.Pos.Col, Note: t.Note})
			}
		}
		resp.Reports = append(resp.Reports, rj)
	}
	for _, re := range res.RuntimeErrs {
		resp.RuntimeErrs = append(resp.RuntimeErrs, re.Error())
	}
	s.reportsServed.Add(int64(len(resp.Reports)))
	return resp
}

// resolveFiles maps request paths to file indices (nil = all files).
func (s *server) resolveFiles(paths []string) ([]int, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	files := make([]int, 0, len(paths))
	for _, path := range paths {
		i := s.inc.Codebase().FileIndex(path)
		if i < 0 {
			return nil, fmt.Errorf("unknown file: %s", path)
		}
		files = append(files, i)
	}
	return files, nil
}

func (s *server) scanOptions(ctx context.Context, maxReports, workers, funcTimeoutMS int) scan.Options {
	opts := scan.Options{
		Workers:     workers,
		MaxReports:  maxReports,
		FuncTimeout: s.funcTimeout,
		// The request context: a client that disconnects mid-scan stops
		// paying for the rest of it (the admitted slot frees up, and no
		// partial results are cached).
		Context: ctx,
	}
	if funcTimeoutMS > 0 {
		opts.FuncTimeout = time.Duration(funcTimeoutMS) * time.Millisecond
	}
	return opts
}

func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req scanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Checker == "" {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "missing 'checker' (DSL text)")
		return
	}
	ck, err := ckdsl.CompileSource(req.Checker)
	if err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusUnprocessableEntity, "checker does not compile: "+err.Error())
		return
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	files, err := s.resolveFiles(req.Files)
	if err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	if files == nil {
		files = allFiles(s.inc.Codebase())
	}

	res := s.inc.RunFiles(files, []checker.Checker{ck},
		s.scanOptions(r.Context(), req.MaxReports, req.Workers, req.FuncTimeoutMS))
	s.scans.Add(1)
	s.observeScan(res)
	if res.Canceled {
		s.scansCanceled.Add(1)
	}
	resp := s.toScanResponse(ck.Name(), res, req.IncludeTrace)
	attachTiming(r.Context(), &resp.TraceID, &resp.Timing, req.IncludeTiming)
	writeJSON(w, http.StatusOK, resp)
}

// batchRequest is the POST /batch body: N checker revisions evaluated
// over the shared store in one request.
type batchRequest struct {
	// Checkers are the checker-DSL program texts.
	Checkers []string `json:"checkers"`
	// Files optionally restricts every scan to these corpus paths.
	Files []string `json:"files,omitempty"`
	// MaxReports caps collected reports per checker (0 = unlimited).
	MaxReports int `json:"max_reports,omitempty"`
	// Workers overrides each scan's parallelism (0 = auto-scaled to the
	// pool size).
	Workers int `json:"workers,omitempty"`
	// Concurrency bounds how many checkers run at once (0 = GOMAXPROCS).
	Concurrency int `json:"concurrency,omitempty"`
	// FuncTimeoutMS overrides the server's per-function analysis budget.
	FuncTimeoutMS int `json:"func_timeout_ms,omitempty"`
	// IncludeTrace adds per-report path traces to the responses.
	IncludeTrace bool `json:"include_trace,omitempty"`
	// IncludeTiming adds the request's trace id and stage timeline to
	// the batch reply (one trace per HTTP request; entries share it).
	IncludeTiming bool `json:"include_timing,omitempty"`
}

// batchResponse is the POST /batch reply: per-checker results in request
// order plus aggregate cache effectiveness.
type batchResponse struct {
	Results []*scanResponse `json:"results"`
	// CheckersRun counts checkers that compiled and scanned;
	// CheckerErrors counts entries rejected at compile time.
	CheckersRun   int       `json:"checkers_run"`
	CheckerErrors int       `json:"checker_errors"`
	Cache         cacheJSON `json:"cache"`
	ElapsedMS     float64   `json:"elapsed_ms"`
	// TraceID and Timing are present when the request asked for
	// include_timing; the timeline aggregates all entries' stages.
	TraceID string     `json:"trace_id,omitempty"`
	Timing  []obs.Span `json:"timing,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Checkers) == 0 {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "missing 'checkers' (list of DSL texts)")
		return
	}

	// Compile every checker first; a bad revision gets a per-entry error
	// instead of failing its siblings.
	resp := &batchResponse{Results: make([]*scanResponse, len(req.Checkers))}
	var cks []checker.Checker
	var live []int // request index of each compiled checker
	for i, src := range req.Checkers {
		ck, err := ckdsl.CompileSource(src)
		if err != nil {
			resp.Results[i] = &scanResponse{Error: "checker does not compile: " + err.Error()}
			resp.CheckerErrors++
			s.scanErrors.Add(1)
			continue
		}
		cks = append(cks, ck)
		live = append(live, i)
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	files, err := s.resolveFiles(req.Files)
	if err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusNotFound, err.Error())
		return
	}

	start := time.Now()
	results := s.inc.RunBatch(cks, files,
		s.scanOptions(r.Context(), req.MaxReports, req.Workers, req.FuncTimeoutMS), req.Concurrency)
	elapsed := time.Since(start)

	agg := &scan.Result{}
	for bi, res := range results {
		resp.Results[live[bi]] = s.toScanResponse(cks[bi].Name(), res, req.IncludeTrace)
		s.observeScan(res)
		agg.CacheHits += res.CacheHits
		agg.CacheMisses += res.CacheMisses
		agg.CacheCoalesced += res.CacheCoalesced
		if res.Canceled {
			s.scansCanceled.Add(1)
		}
	}
	resp.CheckersRun = len(cks)
	resp.Cache = cacheOf(agg)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	attachTiming(r.Context(), &resp.TraceID, &resp.Timing, req.IncludeTiming)
	s.batches.Add(1)
	s.scans.Add(int64(len(cks)))
	writeJSON(w, http.StatusOK, resp)
}

// patchRequest is the POST /patch body. An empty Func replaces the whole
// file with Source; otherwise Source must be a single function that
// replaces Func within the file.
type patchRequest struct {
	Path   string `json:"path"`
	Func   string `json:"func,omitempty"`
	Source string `json:"source"`
}

// patchResponse reports what one mutation touched — and, critically,
// what it did NOT: ChangedFuncs is exactly the number of functions the
// next scan will miss on.
type patchResponse struct {
	Path             string  `json:"path"`
	Mode             string  `json:"mode"` // "patch" or "replace"
	Funcs            int     `json:"funcs"`
	ChangedFuncs     int     `json:"changed_funcs"`
	StaleHashes      int     `json:"stale_hashes"`
	StoreInvalidated int     `json:"store_invalidated"`
	Generation       int64   `json:"generation"`
	ElapsedMS        float64 `json:"elapsed_ms"`
}

func (s *server) handlePatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req patchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Path == "" || req.Source == "" {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "missing 'path' or 'source'")
		return
	}

	// Write lock: wait for in-flight scans and batches to drain, apply
	// the mutation, then let traffic back in against the updated corpus.
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	var m *scan.Mutation
	var err error
	mode := "replace"
	if req.Func != "" {
		mode = "patch"
		m, err = s.inc.Patch(req.Path, req.Func, req.Source)
	} else {
		m, err = s.inc.Replace(req.Path, req.Source)
	}
	if err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.patches.Add(1)
	writeJSON(w, http.StatusOK, &patchResponse{
		Path:             m.Path,
		Mode:             mode,
		Funcs:            m.Funcs,
		ChangedFuncs:     m.Changed,
		StaleHashes:      len(m.StaleHashes),
		StoreInvalidated: m.StoreInvalidated,
		Generation:       m.Generation,
		ElapsedMS:        float64(time.Since(start).Microseconds()) / 1000,
	})
}

// changesetRequest is the POST /changeset body: a commit-sized batch of
// file updates applied atomically. Each change follows /patch semantics
// (empty func = whole-file replace, set func = single-function patch),
// but the whole set costs one in-flight-scan drain and one generation
// bump, and a bad change rejects the entire set.
type changesetRequest struct {
	Changes []changeJSON `json:"changes"`
}

type changeJSON struct {
	Path   string `json:"path"`
	Func   string `json:"func,omitempty"`
	Source string `json:"source"`
}

// changesetResponse reports what the changeset touched — and what it did
// NOT: ChangedFuncs is exactly the number of cache misses the next scan
// will pay, however many files the commit spanned.
type changesetResponse struct {
	Ops              int      `json:"ops"`
	Files            []string `json:"files"`
	ChangedFuncs     int      `json:"changed_funcs"`
	StaleHashes      int      `json:"stale_hashes"`
	StoreInvalidated int      `json:"store_invalidated"`
	Generation       int64    `json:"generation"`
	ElapsedMS        float64  `json:"elapsed_ms"`
}

func (s *server) handleChangeset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req changesetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Changes) == 0 {
		s.scanErrors.Add(1)
		httpError(w, http.StatusBadRequest, "missing 'changes' (list of file updates)")
		return
	}
	changes := make([]scan.Change, 0, len(req.Changes))
	for i, c := range req.Changes {
		if c.Path == "" || c.Source == "" {
			s.scanErrors.Add(1)
			httpError(w, http.StatusBadRequest, fmt.Sprintf("change %d: missing 'path' or 'source'", i))
			return
		}
		changes = append(changes, scan.Change{Path: c.Path, Func: c.Func, Source: c.Source})
	}

	// Write lock: in-flight scans and batches drain ONCE for the whole
	// changeset, then traffic resumes against the fully updated corpus.
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	cs, err := s.inc.ApplyChangeset(changes)
	if err != nil {
		s.scanErrors.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.changesets.Add(1)
	resp := &changesetResponse{
		Ops:              cs.Ops,
		ChangedFuncs:     cs.Changed,
		StaleHashes:      len(cs.StaleHashes),
		StoreInvalidated: cs.StoreInvalidated,
		Generation:       cs.Generation,
		ElapsedMS:        float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, fc := range cs.Files {
		resp.Files = append(resp.Files, fc.Path)
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Version       string      `json:"version"`
	GoVersion     string      `json:"go_version"`
	Files         int         `json:"files"`
	Funcs         int         `json:"funcs"`
	Generation    int64       `json:"generation"`
	Scans         int64       `json:"scans"`
	Batches       int64       `json:"batches"`
	Patches       int64       `json:"patches"`
	Changesets    int64       `json:"changesets"`
	ScanErrors    int64       `json:"scan_errors"`
	ScansCanceled int64       `json:"scans_canceled"`
	ReportsServed int64       `json:"reports_served"`
	GCRemoved     int64       `json:"gc_removed"`
	Store         store.Stats `json:"store"`
	StoreHitRate  float64     `json:"store_hit_rate"`
	// Remote is present only when the daemon runs with a fleet cache
	// tier (-cache-remote): the client-side view of the shared tier's
	// health, including circuit-breaker state.
	Remote *store.RemoteStats `json:"remote,omitempty"`
	// Admission is present only when the daemon runs with admission
	// control (-max-inflight > 0).
	Admission *admissionStats `json:"admission,omitempty"`
}

// handleStats, like handleHealthz, takes no request lock: every value it
// reads is either atomic or guarded by its own short-lived lock.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.inc.Stats()
	cb := s.inc.Codebase()
	var remote *store.RemoteStats
	if s.remote != nil {
		rs := s.remote.RemoteStats()
		remote = &rs
	}
	version, goVersion := obs.BuildVersion()
	writeJSON(w, http.StatusOK, &statsResponse{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Version:       version,
		GoVersion:     goVersion,
		Files:         len(cb.Files),
		Funcs:         cb.NumFuncs(),
		Generation:    cb.Generation(),
		Scans:         s.scans.Load(),
		Batches:       s.batches.Load(),
		Patches:       s.patches.Load(),
		Changesets:    s.changesets.Load(),
		ScanErrors:    s.scanErrors.Load(),
		ScansCanceled: s.scansCanceled.Load(),
		ReportsServed: s.reportsServed.Load(),
		GCRemoved:     s.gcRemoved.Load(),
		Store:         st,
		StoreHitRate:  st.HitRate(),
		Remote:        remote,
		Admission:     s.adm.snapshot(),
	})
}

// handleHealthz deliberately takes no locks: a liveness probe must
// answer even while a patch is queued behind a long batch (a pending
// writer blocks new RWMutex readers, which would make the orchestrator
// kill a healthy warm daemon). The file count never changes and the
// generation counter is atomic.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cb := s.inc.Codebase()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok": true, "files": len(cb.Files), "generation": cb.Generation(),
	})
}

func allFiles(cb *scan.Codebase) []int {
	files := make([]int, len(cb.Files))
	for i := range files {
		files[i] = i
	}
	return files
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("kserve: encode response: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]any{"error": msg})
}
