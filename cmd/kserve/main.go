// Command kserve is the incremental scan service: an HTTP daemon that
// holds a parsed codebase and a shared content-addressed analysis cache
// in memory, so many checker runs amortize one parse and one cache.
//
// This is the deployment shape the paper's §5 scans want: checker
// synthesis and refinement issue many near-identical scans of the same
// tree, and a warm daemon answers repeats from cache instead of
// re-executing the analyzer. The corpus is multi-version: POST /patch
// applies a single-file code update, POST /changeset applies a
// commit-sized multi-file changeset atomically (one snapshot swap, one
// generation bump; "async": true returns a generation token
// immediately), and only the touched functions go cold. Scans pin an
// immutable snapshot at admission and run lock-free, so writes never
// stall reads and reads never drain writes. POST /batch evaluates N
// checker revisions in one request over a bounded worker pool
// (StaAgent-style many-revision evaluation), all against one pinned
// snapshot.
//
// The read endpoints (/scan, /batch) sit behind a bounded admission
// queue (-max-inflight, -max-queued); the write endpoints (/patch,
// /changeset) behind their own gate (-max-inflight-writes,
// -max-queued-writes) — so a changeset storm sheds writes, never
// reads. Excess load is shed with 429 + Retry-After instead of being
// buffered without bound. -max-cost/-max-cost-writes add a
// cost-weighted budget on top (checkers × files for reads, ops for
// writes), so one enormous batch can't starve the gate that a
// request-count limit would admit.
//
// With -shard-count N (plus -shard-index and -peers) the daemon joins
// a sharded fleet: each replica owns the files whose path hash lands
// on its index, any replica coordinates a scan by scattering
// shard-local sub-scans to the owners and merging the partials
// byte-identically to a single-host scan, and changesets propagate
// fleet-wide through a generation feed hosted on the -cache-remote
// kcached (peers replay it via POST /converge). A dead or behind
// shard degrades its partition to the coordinator's local snapshot —
// slower, never wrong.
//
// Wire types live in internal/api: every response carries the corpus
// generation (body + X-KN-Generation header), scan-shaped requests
// accept min_generation (read-your-writes), and errors use the
// {"error": {"code", "message", "retry_after_ms"}} envelope.
//
// Usage:
//
//	kserve                         # serve the synthetic corpus on :8321
//	kserve -addr :9000 -scale 0.5
//	kserve -cache-dir /var/cache/kserve -cache-ttl 72h -cache-max-bytes 268435456
//	kserve -cache-remote http://cache-host:8322   # share results fleet-wide via kcached
//	kserve -func-timeout 2s        # default per-function analysis budget
//	kserve -max-inflight 8 -max-queued 32 -max-queued-per-client 4
//	kserve -max-inflight-writes 1 -max-queued-writes 32
//	kserve -max-cost 100000        # weighted read budget: sum of checkers x files
//	kserve -min-gen-wait 2s        # bounded wait before 409 on min_generation
//	kserve -shard-index 0 -shard-count 3 -peers http://a:8321,http://b:8321,http://c:8321 \
//	       -cache-remote http://cache-host:8322   # sharded fleet member
//	kserve -shard-timeout 30s -shard-hedge 200ms  # scatter budgets
//
// Endpoints:
//
//	POST /scan             {"checker": "<DSL text>", "files": [...], "min_generation": n, ...}
//	POST /batch            {"checkers": ["<DSL>", ...], "concurrency": n, ...}
//	POST /patch            {"path": "...", "func": "...", "source": "..."}
//	POST /changeset        {"changes": [{"path", "func?", "source"}, ...], "async": bool}
//	GET  /changeset/status ?generation=N  async changeset outcome
//	POST /converge         replay the generation feed to catch this shard up
//	GET  /trace/{id}       assembled cross-host span tree (?format=text for a waterfall)
//	GET  /traces           local tail-sampled trace index (?limit=N&slow=1)
//	GET  /stats            cache + service + admission (+ shard) counters
//	GET  /metrics          Prometheus exposition
//	GET  /healthz          liveness
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"knighter/internal/api"
	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/kernel"
	"knighter/internal/obs"
	"knighter/internal/scan"
	"knighter/internal/shard"
	"knighter/internal/store"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	seed := flag.Int64("seed", 1, "corpus seed")
	scale := flag.Float64("scale", 1.0, "corpus scale")
	cacheBytes := flag.Int64("cache-bytes", 0, "in-memory cache budget in serialized bytes (0 = default 64 MiB)")
	cacheDir := flag.String("cache-dir", "", "optional on-disk cache tier directory")
	cacheTTL := flag.Duration("cache-ttl", 0, "drop disk-tier entries older than this (0 = keep forever)")
	cacheMaxBytes := flag.Int64("cache-max-bytes", 0, "disk-tier byte budget; GC evicts oldest-first past it (0 = unbounded)")
	cacheRemote := flag.String("cache-remote", "", "optional kcached URL for the shared fleet cache tier (e.g. http://cache-host:8322)")
	cacheRemoteTimeout := flag.Duration("cache-remote-timeout", 2*time.Second, "per-request budget for the remote tier")
	funcTimeout := flag.Duration("func-timeout", 0, "default per-function analysis budget (0 = none)")
	maxInflight := flag.Int("max-inflight", runtime.GOMAXPROCS(0), "max concurrent read requests (/scan, /batch) (0 = unlimited, no admission control)")
	maxQueued := flag.Int("max-queued", 64, "max read requests waiting for an inflight slot before shedding with 429")
	maxQueuedPerClient := flag.Int("max-queued-per-client", 16, "max queued requests per client key (X-Client-ID header or remote address; 0 = unbounded)")
	maxInflightWrites := flag.Int("max-inflight-writes", 1, "max concurrent write requests (/patch, /changeset); writes serialize on the corpus commit lock anyway (0 = ungated)")
	maxQueuedWrites := flag.Int("max-queued-writes", 32, "max write requests waiting before shedding with 429")
	maxCost := flag.Int64("max-cost", 0, "max summed cost weight (checkers x files) of admitted read requests (0 = unweighted admission)")
	maxCostWrites := flag.Int64("max-cost-writes", 0, "max summed cost weight (changeset ops) of admitted write requests (0 = unweighted)")
	shardIndex := flag.Int("shard-index", 0, "this replica's shard index within the fleet (with -shard-count)")
	shardCount := flag.Int("shard-count", 1, "number of corpus shards; > 1 enables scatter/gather fan-out")
	peers := flag.String("peers", "", "comma-separated shard base URLs in shard-index order (required when -shard-count > 1; entry -shard-index names this replica)")
	shardTimeout := flag.Duration("shard-timeout", 60*time.Second, "per-shard sub-request budget before the partition falls back to the local snapshot")
	shardHedge := flag.Duration("shard-hedge", 0, "start a local-snapshot hedge for a shard sub-request outstanding this long (0 = fall back only on failure)")
	minGenWait := flag.Duration("min-gen-wait", 2*time.Second, "bounded wait for a request's min_generation before answering 409")
	slowScan := flag.Duration("slow-scan", 0, "log a structured slow-request report (trace id + stage timeline) for requests slower than this (0 = off); also the trace store's always-keep slow threshold")
	traceRetain := flag.Int("trace-retain", 512, "completed traces retained for GET /trace/{id} (0 disables the trace store)")
	traceSample := flag.Float64("trace-sample", 0.05, "probability of retaining an unremarkable trace; slow, errored, degraded, and hedge-win traces are always retained")
	pprofAddr := flag.String("pprof-addr", "", "optional side listen address for net/http/pprof (e.g. localhost:6060); never exposed on the main port")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *showVersion {
		v, gv := obs.BuildVersion()
		fmt.Printf("kserve %s (%s)\n", v, gv)
		return
	}

	corpus := kernel.Generate(kernel.Config{Seed: *seed, Scale: *scale})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kserve:", err)
		os.Exit(1)
	}
	// The signal context exists before any background loop starts so the
	// disk compaction loop (and anything else long-running) stops on the
	// same SIGINT/SIGTERM that begins the drain — no sweep races the
	// final stats log.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Tier composition: memory in front, then the shared remote tier and
	// the local disk tier — hedged against each other when both exist:
	// a memory miss probes kcached and the local segment store
	// concurrently and the first hit wins, so the network round-trip
	// bounds p99 instead of adding to it, and every local computation is
	// still published for the siblings. The whole stack is wrapped in
	// singleflight coalescing: identical concurrent misses (whose window
	// the remote round-trip widens) compute once. Every tier is
	// individually instrumented into the shared registry, so /metrics
	// breaks hits, misses, and latency down by WHERE.
	reg := obs.NewRegistry("kserve")
	var disk *store.SegmentDisk
	var remote *store.Remote
	var backRemote, backDisk store.Store
	if *cacheRemote != "" {
		remote, err = store.NewRemote(*cacheRemote, store.RemoteConfig{Timeout: *cacheRemoteTimeout})
		if err != nil {
			fmt.Fprintln(os.Stderr, "kserve:", err)
			os.Exit(1)
		}
		backRemote = store.Instrument(reg, "remote", asyncInvalidate{remote})
	}
	if *cacheDir != "" {
		var opts []store.SegmentDiskOption
		if *cacheMaxBytes > 0 {
			opts = append(opts, store.SegmentDiskMaxBytes(*cacheMaxBytes))
		}
		disk, err = store.NewSegmentDisk(*cacheDir, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kserve:", err)
			os.Exit(1)
		}
		if n := disk.Migrated(); n > 0 {
			log.Printf("kserve: disk cache: migrated %d file-per-entry records into segments", n)
		}
		backDisk = store.Instrument(reg, "disk", disk)
	} else if *cacheMaxBytes > 0 {
		log.Printf("kserve: -cache-max-bytes ignored without -cache-dir (the byte budget bounds the disk tier; use -cache-bytes for the memory tier)")
	}
	// The local tiers sample latency 1-in-16: a memory hit costs about
	// as much as reading the clock, so full timing there would be the
	// observability layer taxing the very path it exists to protect.
	var hedged *store.Hedged
	var st store.Store = store.Instrument(reg, "memory", store.NewMemory(*cacheBytes)).SampleLatency(4)
	switch {
	case backRemote != nil && backDisk != nil:
		hedged = store.NewHedged(backRemote, backDisk)
		st = store.NewTiered(st, store.Instrument(reg, "hedged", hedged))
	case backRemote != nil:
		st = store.NewTiered(st, backRemote)
	case backDisk != nil:
		st = store.NewTiered(st, backDisk)
	}
	st = store.Instrument(reg, "coalesced", store.NewCoalesced(st)).SampleLatency(4)
	srv := newServer(scan.NewIncremental(cb, st))
	srv.remote = remote
	srv.funcTimeout = *funcTimeout
	srv.slowScan = *slowScan
	srv.minGenWait = *minGenWait
	srv.traces = obs.NewTraceStore(*traceRetain, *traceSample, *slowScan)
	read := newAdmission(*maxInflight, *maxQueued, *maxQueuedPerClient)
	write := newAdmission(*maxInflightWrites, *maxQueuedWrites, *maxQueuedPerClient)
	if read != nil {
		read.maxCost = *maxCost
	}
	if write != nil {
		write.maxCost = *maxCostWrites
	}
	srv.setGates(read, write)
	if *shardCount > 1 {
		peerList := splitPeers(*peers)
		if len(peerList) != *shardCount {
			fmt.Fprintf(os.Stderr, "kserve: -shard-count %d needs exactly that many -peers entries, got %d\n", *shardCount, len(peerList))
			os.Exit(2)
		}
		if *shardIndex < 0 || *shardIndex >= *shardCount {
			fmt.Fprintf(os.Stderr, "kserve: -shard-index %d out of range [0,%d)\n", *shardIndex, *shardCount)
			os.Exit(2)
		}
		srv.setupShard(*shardIndex, *shardCount, peerList, *cacheRemote, *shardTimeout, *shardHedge)
		if *cacheRemote == "" {
			log.Printf("kserve: sharded without -cache-remote: no generation feed; changesets will not propagate to peers")
		}
		log.Printf("kserve: shard %d/%d, peers=%v", *shardIndex, *shardCount, peerList)
	}
	// The trace collector fans GET /trace/{id} out to everyone who may
	// hold a fragment of a trace this replica coordinated: every shard
	// peer (each sub-scan left a fragment on its owner) plus kcached.
	var traceTargets []string
	if sh := srv.shard; sh != nil {
		for i, p := range sh.peers {
			if i != sh.index && p != "" {
				traceTargets = append(traceTargets, p)
			}
		}
	}
	if *cacheRemote != "" {
		traceTargets = append(traceTargets, strings.TrimRight(*cacheRemote, "/"))
	}
	srv.traceColl = shard.NewTraceCollector(traceTargets, 2*time.Second)
	srv.registerMetrics(reg)
	if disk != nil {
		// Compaction runs whenever the disk tier exists: even without a
		// TTL or byte budget it reclaims the dead bytes that overwrites
		// and invalidations leave in the segment log.
		srv.startDiskGC(ctx, disk, *cacheTTL)
	}
	if remote != nil {
		log.Printf("kserve: fleet cache tier: %s (hedged against local disk: %v)", *cacheRemote, hedged != nil)
	}
	if srv.adm != nil {
		log.Printf("kserve: read admission control: %d inflight, %d queued", *maxInflight, *maxQueued)
	}
	if srv.wadm != nil {
		log.Printf("kserve: write admission control: %d inflight, %d queued", *maxInflightWrites, *maxQueuedWrites)
	}
	if *pprofAddr != "" {
		startPprof("kserve", *pprofAddr)
	}

	// Graceful shutdown: SIGTERM/SIGINT stops the listener, in-flight
	// requests drain (bounded), and the daemon logs its final counters —
	// so a fleet roll never truncates a scan mid-response and the last
	// cache numbers survive in the log.
	hs := &http.Server{Addr: *addr, Handler: srv.routes()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	version, goVersion := obs.BuildVersion()
	log.Printf("kserve: %s (%s) serving %d files / %d functions on %s",
		version, goVersion, len(cb.Files()), cb.NumFuncs(), *addr)
	select {
	case err := <-errCh:
		log.Fatal("kserve: ", err)
	case <-ctx.Done():
		stop()
		log.Printf("kserve: shutdown signal; draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Printf("kserve: shutdown: %v", err)
		}
		if disk != nil {
			// Final sync: whatever the flush window still held is on disk
			// before the process exits, so the next boot starts as warm as
			// this one ended.
			if err := disk.Close(); err != nil {
				log.Printf("kserve: disk close: %v", err)
			}
		}
		stats := srv.inc.Stats()
		log.Printf("kserve: final stats: uptime=%.1fs scans=%d batches=%d reports=%d cache_hits=%d cache_misses=%d hit_rate=%.3f",
			time.Since(srv.started).Seconds(), srv.scans.Load(), srv.batches.Load(),
			srv.reportsServed.Load(), stats.Hits, stats.Misses, stats.HitRate())
	}
}

// startPprof serves net/http/pprof on its own listener — never the main
// port, so profiling endpoints are reachable only where the operator
// points them (typically localhost).
func startPprof(name, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		log.Printf("%s: pprof on %s", name, addr)
		if err := http.ListenAndServe(addr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("%s: pprof: %v", name, err)
		}
	}()
}

// server holds the warm codebase, the shared store, and service
// counters.
type server struct {
	inc     *scan.Incremental
	started time.Time
	// funcTimeout is the default per-function analysis budget applied
	// when a request does not set its own.
	funcTimeout time.Duration
	// adm gates the read endpoints (/scan, /batch); wadm gates the write
	// endpoints (/patch, /changeset). Separate gates are the point:
	// since scans pin MVCC snapshots and never block on writers, a
	// changeset storm saturating wadm sheds writes while reads keep
	// flowing untouched — and vice versa. nil = no admission control.
	adm  *admission
	wadm *admission
	// remote is the shared fleet cache tier, when -cache-remote is set;
	// kept for /stats health reporting.
	remote *store.Remote
	// metrics is the /metrics instrumentation, nil until registerMetrics.
	metrics *serverMetrics
	// slowScan, when > 0, triggers the structured slow-request log line
	// (trace id + stage timeline) for requests slower than it.
	slowScan time.Duration
	// minGenWait bounds how long a request's min_generation may hold the
	// request before it fails 409 with the current generation.
	minGenWait time.Duration
	// asyncLedger records async changeset outcomes for
	// GET /changeset/status.
	asyncLedger asyncLedger
	// shard is the fleet fan-out layer (-shard-count > 1); nil on a
	// single-host daemon, and every shard path nil-checks it.
	shard *shardLayer
	// traces is the tail-sampled trace store behind GET /trace/{id};
	// nil (tracing disabled) is valid everywhere it is used.
	traces *obs.TraceStore
	// traceColl fans /trace/{id} out to shard peers and kcached; nil
	// when there is no one else to ask (unsharded, no remote tier).
	traceColl *shard.TraceCollector
	// accessLog overrides the destination of per-request log lines
	// (tests inject one; nil = the process logger).
	accessLog *log.Logger

	// No request-wide corpus lock: scans pin an immutable snapshot
	// (scan.Codebase is MVCC) and mutations commit by pointer swap, so
	// the old server-level RWMutex — which made every write drain every
	// read — is gone, not merely narrowed.

	scans           atomic.Int64
	batches         atomic.Int64
	patches         atomic.Int64
	changesets      atomic.Int64
	asyncChangesets atomic.Int64
	scanErrors      atomic.Int64
	scansCanceled   atomic.Int64
	reportsServed   atomic.Int64
	gcRemoved       atomic.Int64
}

func newServer(inc *scan.Incremental) *server {
	s := &server{inc: inc, started: time.Now(), minGenWait: 2 * time.Second}
	s.asyncLedger.init()
	return s
}

// setGates installs the read and write admission gates and teaches both
// to stamp shed responses with the live corpus generation.
func (s *server) setGates(read, write *admission) {
	gen := func() int64 { return s.inc.Codebase().Generation() }
	if read != nil {
		read.generation = gen
	}
	if write != nil {
		write.generation = gen
	}
	s.adm, s.wadm = read, write
}

// asyncInvalidate wraps the remote tier so corpus mutations never stall
// on a network round-trip: /patch and /changeset invalidate the store
// after their generation commits, and a slow or dead kcached would
// otherwise hold the mutation response for the remote timeout. Safe to
// defer because remote invalidation is garbage collection, not a
// correctness mechanism — content addressing means the orphaned keys
// can never be requested again (the daemon's doc comment states the
// same contract). Gets, Puts, and Stats pass through synchronously.
type asyncInvalidate struct{ *store.Remote }

func (a asyncInvalidate) InvalidateFunc(funcHash string) int {
	go a.Remote.InvalidateFunc(funcHash)
	return 0
}

func (a asyncInvalidate) InvalidateFuncs(funcHashes []string) int {
	go a.Remote.InvalidateFuncs(funcHashes)
	return 0
}

// startDiskGC runs the segment store's compaction loop over the disk
// tier until ctx is done, hooking the server's counter and log line
// into each sweep. The context is the daemon's signal context: shutdown
// stops the loop instead of leaving a sweep racing the drain.
func (s *server) startDiskGC(ctx context.Context, disk *store.SegmentDisk, ttl time.Duration) {
	disk.StartCompactLoop(ctx, ttl, func(n int, dur time.Duration) {
		s.observeGCSweep(dur)
		if n > 0 {
			s.gcRemoved.Add(int64(n))
			log.Printf("kserve: disk GC removed %d entries in %s", n, dur)
		}
	})
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	// Reads (/scan, /batch) and writes (/patch, /changeset) go through
	// SEPARATE admission gates: scans pin MVCC snapshots and never wait
	// on a writer, so there is no reason to let a changeset storm's
	// queue shed a read (or a batch flood shed a commit). /stats,
	// /healthz, and /changeset/status stay outside both gates: they must
	// answer even when the daemon is saturated (that is when an operator
	// needs them most).
	// withObs sits OUTSIDE the gates: the trace exists before the
	// request queues (so admission_wait lands on the timeline) and the
	// measured latency is what the client saw, queueing included.
	mux.HandleFunc("/scan", s.withObs("scan", s.adm.wrap(s.handleScan)))
	mux.HandleFunc("/batch", s.withObs("batch", s.adm.wrap(s.handleBatch)))
	mux.HandleFunc("/changeset", s.withObs("changeset", s.wadm.wrap(s.handleChangeset)))
	mux.HandleFunc("/changeset/status", s.handleChangesetStatus)
	mux.HandleFunc("/converge", s.withObs("converge", s.wadm.wrap(s.handleConverge)))
	mux.HandleFunc("/patch", s.withObs("patch", s.wadm.wrap(s.handlePatch)))
	mux.HandleFunc("/stats", s.handleStats)
	// The trace endpoints stay outside the gates with /stats: they are
	// the triage path, needed exactly when the daemon is drowning.
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /traces", s.handleTraces)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.metrics == nil {
			s.httpError(w, http.StatusNotFound, api.ErrUnavailable, "metrics not registered")
			return
		}
		s.metrics.reg.Handler().ServeHTTP(w, r)
	})
	return mux
}

// requestCost is the admission cost weight of a scan-shaped request:
// checkers x files, with an empty file list meaning the whole corpus.
// It is what the request will actually make the analyzer walk, so one
// 50-checker full-corpus /batch weighs 50 corpus scans — not the one
// token a single-file /scan also costs.
func (s *server) requestCost(checkers int, files []string) int64 {
	n := len(files)
	if n == 0 {
		n = len(s.inc.Codebase().Files())
	}
	if checkers < 1 {
		checkers = 1
	}
	return int64(checkers) * int64(n)
}

// attachTiming copies the request trace's id and span timeline into the
// response when the client asked for it.
func attachTiming(ctx context.Context, id *string, spans *[]obs.Span, want bool) {
	if !want {
		return
	}
	if tr := obs.TraceFrom(ctx); tr != nil {
		*id = tr.ID
		*spans = tr.Spans()
	}
}

// toScanResponse wraps the shared api.ScanResult conversion with the
// server's reports-served accounting. includeCuts is set for shard-local
// sub-scans: the per-file cut list is what lets a coordinator splice
// this partial back into global file order.
func (s *server) toScanResponse(name string, res *scan.Result, includeTrace, includeCuts bool) *api.ScanResponse {
	resp := api.ScanResult(name, res, includeTrace, includeCuts)
	s.reportsServed.Add(int64(len(resp.Reports)))
	return resp
}

// awaitMinGeneration implements the serve-at-or-after contract: wait a
// bounded interval for the corpus to reach the requested generation,
// and answer 409 + the current generation + a retry hint if it does
// not arrive in time. Returns false when the request has been answered.
func (s *server) awaitMinGeneration(w http.ResponseWriter, r *http.Request, min int64) bool {
	if min <= 0 {
		return true
	}
	cb := s.inc.Codebase()
	ctx, cancel := context.WithTimeout(r.Context(), s.minGenWait)
	ok := cb.WaitForGeneration(ctx, min)
	cancel()
	if ok {
		return true
	}
	s.scanErrors.Add(1)
	s.writeError(w, http.StatusConflict, &api.Error{
		Code: api.ErrGenerationUnavailable,
		Message: fmt.Sprintf("corpus is at generation %d; min_generation %d not reached within %s",
			cb.Generation(), min, s.minGenWait),
		RetryAfterMS: s.minGenWait.Milliseconds(),
	})
	return false
}

// resolveFiles maps request paths to file indices (nil = all files).
func (s *server) resolveFiles(paths []string) ([]int, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	files := make([]int, 0, len(paths))
	for _, path := range paths {
		i := s.inc.Codebase().FileIndex(path)
		if i < 0 {
			return nil, fmt.Errorf("unknown file: %s", path)
		}
		files = append(files, i)
	}
	return files, nil
}

func (s *server) scanOptions(ctx context.Context, maxReports, workers, funcTimeoutMS int) scan.Options {
	opts := scan.Options{
		Workers:     workers,
		MaxReports:  maxReports,
		FuncTimeout: s.funcTimeout,
		// The request context: a client that disconnects mid-scan stops
		// paying for the rest of it (the admitted slot frees up, and no
		// partial results are cached).
		Context: ctx,
	}
	if funcTimeoutMS > 0 {
		opts.FuncTimeout = time.Duration(funcTimeoutMS) * time.Millisecond
	}
	return opts
}

func (s *server) handleScan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, api.ErrMethodNotAllowed, "POST only")
		return
	}
	var req api.ScanRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Checker == "" {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, "missing 'checker' (DSL text)")
		return
	}
	// Cost-weighted admission: the gate's token only counted requests;
	// the cost charge weighs what is inside one (checkers x files), so
	// one enormous request cannot hide behind the same token a tiny one
	// costs.
	release, ok := s.adm.admitCost(w, s.requestCost(1, req.Files))
	if !ok {
		return
	}
	defer release()
	ck, err := ckdsl.CompileSource(req.Checker)
	if err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusUnprocessableEntity, api.ErrUnprocessable, "checker does not compile: "+err.Error())
		return
	}
	// A sharded replica that is behind the requested generation tries
	// the feed first: a sub-scan from a coordinator that just committed
	// converges here instead of burning its bounded wait toward a 409.
	s.maybeConverge(r.Context(), req.MinGeneration)
	if !s.awaitMinGeneration(w, r, req.MinGeneration) {
		return
	}

	// No corpus lock: RunFiles pins the live snapshot itself. The
	// resolved indices stay valid across generations because the file
	// set is fixed — only contents change.
	files, err := s.resolveFiles(req.Files)
	if err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusNotFound, api.ErrNotFound, err.Error())
		return
	}
	if s.shard != nil && !req.ShardLocal {
		s.scatterScan(w, r, &req, ck)
		return
	}
	if files == nil {
		files = allFiles(s.inc.Codebase())
	}

	res := s.inc.RunFiles(files, []checker.Checker{ck},
		s.scanOptions(r.Context(), req.MaxReports, req.Workers, req.FuncTimeoutMS))
	s.scans.Add(1)
	s.observeScan(r.Context(), res)
	if res.Canceled {
		s.scansCanceled.Add(1)
	}
	if req.ShardLocal && s.shard != nil {
		s.shard.subScans.Add(1)
	}
	resp := s.toScanResponse(ck.Name(), res, req.IncludeTrace, req.ShardLocal)
	attachTiming(r.Context(), &resp.TraceID, &resp.Timing, req.IncludeTiming)
	s.writeOK(w, res.Generation, resp)
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, api.ErrMethodNotAllowed, "POST only")
		return
	}
	var req api.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Checkers) == 0 {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, "missing 'checkers' (list of DSL texts)")
		return
	}
	// Cost-weighted admission: a /batch weighs checkers x files, so the
	// tenant shipping 50 checkers over the full corpus is charged 50
	// corpus scans, not one request.
	release, ok := s.adm.admitCost(w, s.requestCost(len(req.Checkers), req.Files))
	if !ok {
		return
	}
	defer release()

	// Compile every checker first; a bad revision gets a per-entry error
	// instead of failing its siblings.
	resp := &api.BatchResponse{Results: make([]*api.ScanResponse, len(req.Checkers))}
	var cks []checker.Checker
	var live []int // request index of each compiled checker
	for i, src := range req.Checkers {
		ck, err := ckdsl.CompileSource(src)
		if err != nil {
			resp.Results[i] = &api.ScanResponse{Error: "checker does not compile: " + err.Error()}
			resp.CheckerErrors++
			s.scanErrors.Add(1)
			continue
		}
		cks = append(cks, ck)
		live = append(live, i)
	}
	s.maybeConverge(r.Context(), req.MinGeneration)
	if !s.awaitMinGeneration(w, r, req.MinGeneration) {
		return
	}

	// No corpus lock: RunBatch pins ONE snapshot for the whole batch,
	// so every entry scans the same generation even while changesets
	// commit concurrently.
	files, err := s.resolveFiles(req.Files)
	if err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusNotFound, api.ErrNotFound, err.Error())
		return
	}
	if s.shard != nil && !req.ShardLocal && len(cks) > 0 {
		s.scatterBatch(w, r, &req, resp, cks, live)
		return
	}

	// Default for an all-errors batch (nothing scanned): the live
	// generation; any actual result overwrites it with the pinned one.
	resp.Generation = s.inc.Codebase().Generation()
	start := time.Now()
	results := s.inc.RunBatch(cks, files,
		s.scanOptions(r.Context(), req.MaxReports, req.Workers, req.FuncTimeoutMS), req.Concurrency)
	elapsed := time.Since(start)

	agg := &scan.Result{}
	for bi, res := range results {
		resp.Results[live[bi]] = s.toScanResponse(cks[bi].Name(), res, req.IncludeTrace, req.ShardLocal)
		s.observeScan(r.Context(), res)
		resp.Generation = res.Generation
		agg.CacheHits += res.CacheHits
		agg.CacheMisses += res.CacheMisses
		agg.CacheCoalesced += res.CacheCoalesced
		if res.Canceled {
			s.scansCanceled.Add(1)
		}
	}
	resp.CheckersRun = len(cks)
	resp.Cache = api.CacheOf(agg)
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
	attachTiming(r.Context(), &resp.TraceID, &resp.Timing, req.IncludeTiming)
	s.batches.Add(1)
	s.scans.Add(int64(len(cks)))
	s.writeOK(w, resp.Generation, resp)
}

func (s *server) handlePatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, api.ErrMethodNotAllowed, "POST only")
		return
	}
	var req api.PatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Path == "" || req.Source == "" {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, "missing 'path' or 'source'")
		return
	}
	// Write cost is ops: one for a patch.
	release, ok := s.wadm.admitCost(w, 1)
	if !ok {
		return
	}
	defer release()

	// No request-wide lock: the mutation is an MVCC commit — in-flight
	// scans keep their pinned snapshots; the next admitted scan pins the
	// new generation.
	start := time.Now()
	var m *scan.Mutation
	var err error
	mode := "replace"
	if req.Func != "" {
		mode = "patch"
		m, err = s.inc.Patch(req.Path, req.Func, req.Source)
	} else {
		m, err = s.inc.Replace(req.Path, req.Source)
	}
	if err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusUnprocessableEntity, api.ErrUnprocessable, err.Error())
		return
	}
	s.patches.Add(1)
	s.observeCommit(time.Since(start))
	// A patch is a one-change commit to the fleet feed, so sharded peers
	// converge on it the same way they do on changesets.
	s.shardPublish(r.Context(), m.Generation, []api.Change{{Path: req.Path, Func: req.Func, Source: req.Source}})
	s.writeOK(w, m.Generation, &api.PatchResponse{
		Path:             m.Path,
		Mode:             mode,
		Funcs:            m.Funcs,
		ChangedFuncs:     m.Changed,
		StaleHashes:      len(m.StaleHashes),
		StoreInvalidated: m.StoreInvalidated,
		Generation:       m.Generation,
		ElapsedMS:        float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *server) handleChangeset(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, api.ErrMethodNotAllowed, "POST only")
		return
	}
	var req api.ChangesetRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, "bad JSON: "+err.Error())
		return
	}
	if len(req.Changes) == 0 {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, "missing 'changes' (list of file updates)")
		return
	}
	changes := make([]scan.Change, 0, len(req.Changes))
	for i, c := range req.Changes {
		if c.Path == "" || c.Source == "" {
			s.scanErrors.Add(1)
			s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, fmt.Sprintf("change %d: missing 'path' or 'source'", i))
			return
		}
		changes = append(changes, scan.Change{Path: c.Path, Func: c.Func, Source: c.Source})
	}
	// Write cost is ops: each change is one staged parse + commit entry.
	release, ok := s.wadm.admitCost(w, int64(len(req.Changes)))
	if !ok {
		return
	}
	defer release()

	start := time.Now()
	if req.Async {
		// Reserve a generation token and return immediately; the commit
		// proceeds in the background in token order. The token is the
		// client's read-your-writes handle: pass it as min_generation on
		// a later /scan, or poll /changeset/status?generation=N.
		a := s.inc.ApplyChangesetAsync(changes)
		s.asyncChangesets.Add(1)
		s.asyncLedger.record(a.Generation)
		go s.settleAsync(context.WithoutCancel(r.Context()), a, start, req.Changes)
		s.writeJSONGen(w, http.StatusAccepted, a.Generation, &api.ChangesetResponse{
			Async:      true,
			Status:     api.StatusPending,
			Generation: a.Generation,
			ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
		})
		return
	}

	// Sync path: no request-wide lock. The changeset stages off to the
	// side and commits with a pointer swap — in-flight scans keep their
	// pinned snapshots and are never drained.
	cs, err := s.inc.ApplyChangeset(changes)
	if err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusUnprocessableEntity, api.ErrUnprocessable, err.Error())
		return
	}
	s.changesets.Add(1)
	s.observeCommit(time.Since(start))
	s.shardPublish(r.Context(), cs.Generation, req.Changes)
	resp := &api.ChangesetResponse{
		Status:           api.StatusCommitted,
		Ops:              cs.Ops,
		ChangedFuncs:     cs.Changed,
		StaleHashes:      len(cs.StaleHashes),
		StoreInvalidated: cs.StoreInvalidated,
		Generation:       cs.Generation,
		ElapsedMS:        float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, fc := range cs.Files {
		resp.Files = append(resp.Files, fc.Path)
	}
	s.writeOK(w, cs.Generation, resp)
}

// settleAsync waits for an async changeset to commit (or fail) and
// records the outcome in the ledger so /changeset/status can report it.
// A committed changeset is also published to the fleet feed — only
// then, so peers never replay a change the coordinator rejected.
func (s *server) settleAsync(ctx context.Context, a *scan.AsyncChangeset, start time.Time, changes []api.Change) {
	cs, err := a.Result()
	if err != nil {
		s.scanErrors.Add(1)
		s.asyncLedger.settle(a.Generation, &api.ChangesetStatus{
			Generation: a.Generation,
			Status:     api.StatusFailed,
			Error:      err.Error(),
		})
		return
	}
	s.changesets.Add(1)
	s.observeCommit(time.Since(start))
	s.shardPublish(ctx, cs.Generation, changes)
	st := &api.ChangesetStatus{
		Generation:       cs.Generation,
		Status:           api.StatusCommitted,
		Ops:              cs.Ops,
		ChangedFuncs:     cs.Changed,
		StaleHashes:      len(cs.StaleHashes),
		StoreInvalidated: cs.StoreInvalidated,
	}
	for _, fc := range cs.Files {
		st.Files = append(st.Files, fc.Path)
	}
	s.asyncLedger.settle(a.Generation, st)
}

// asyncLedger remembers the outcome of recent async changesets, keyed by
// their reserved generation token. Bounded FIFO: old entries age out once
// the ledger exceeds asyncLedgerCap, so a long-lived daemon under a
// changeset storm cannot grow without bound.
const asyncLedgerCap = 1024

type asyncLedger struct {
	mu    sync.Mutex
	byGen map[int64]*api.ChangesetStatus
	order []int64
}

func (l *asyncLedger) init() {
	l.byGen = make(map[int64]*api.ChangesetStatus)
}

func (l *asyncLedger) record(gen int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byGen[gen] = &api.ChangesetStatus{Generation: gen, Status: api.StatusPending}
	l.order = append(l.order, gen)
	for len(l.order) > asyncLedgerCap {
		delete(l.byGen, l.order[0])
		l.order = l.order[1:]
	}
}

func (l *asyncLedger) settle(gen int64, st *api.ChangesetStatus) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.byGen[gen]; ok {
		l.byGen[gen] = st
	}
}

func (l *asyncLedger) lookup(gen int64) (*api.ChangesetStatus, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.byGen[gen]
	return st, ok
}

// handleChangesetStatus reports the outcome of an async changeset by its
// generation token: pending, committed (with the commit's accounting), or
// failed (with the rejection reason — the token's generation was burned
// by an empty commit, so min_generation waits on it still resolve).
func (s *server) handleChangesetStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.httpError(w, http.StatusMethodNotAllowed, api.ErrMethodNotAllowed, "GET only")
		return
	}
	gen, err := strconv.ParseInt(r.URL.Query().Get("generation"), 10, 64)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, api.ErrBadRequest, "missing or bad 'generation' query parameter")
		return
	}
	st, ok := s.asyncLedger.lookup(gen)
	if !ok {
		s.httpError(w, http.StatusNotFound, api.ErrNotFound, fmt.Sprintf("no async changeset recorded for generation %d", gen))
		return
	}
	s.writeOK(w, s.inc.Codebase().Generation(), st)
}

// handleStats, like handleHealthz, takes no request lock: every value it
// reads is either atomic or guarded by its own short-lived lock. In
// particular Generation comes from an atomic counter, so /stats reports
// a truthful generation even while a changeset commit is mid-swap.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.inc.Stats()
	cb := s.inc.Codebase()
	var remote *store.RemoteStats
	if s.remote != nil {
		rs := s.remote.RemoteStats()
		remote = &rs
	}
	version, goVersion := obs.BuildVersion()
	gen := cb.Generation()
	s.writeOK(w, gen, &api.StatsResponse{
		UptimeSeconds:   time.Since(s.started).Seconds(),
		Version:         version,
		GoVersion:       goVersion,
		Files:           len(cb.Files()),
		Funcs:           cb.NumFuncs(),
		Generation:      gen,
		PinnedSnapshots: cb.PinnedSnapshots(),
		Scans:           s.scans.Load(),
		Batches:         s.batches.Load(),
		Patches:         s.patches.Load(),
		Changesets:      s.changesets.Load(),
		AsyncChangesets: s.asyncChangesets.Load(),
		ScanErrors:      s.scanErrors.Load(),
		ScansCanceled:   s.scansCanceled.Load(),
		ReportsServed:   s.reportsServed.Load(),
		GCRemoved:       s.gcRemoved.Load(),
		Store:           st,
		StoreHitRate:    st.HitRate(),
		Remote:          remote,
		Admission:       s.adm.snapshot(),
		WriteAdmission:  s.wadm.snapshot(),
		Shards:          s.shardStats(),
		TraceStore:      s.traces.Stats(),
		ScanExemplars:   s.scanExemplars(),
	})
}

// handleHealthz deliberately takes no locks: a liveness probe must
// answer instantly even mid-commit. Under MVCC there is no pending
// writer that could block it — every value here is an atomic load.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cb := s.inc.Codebase()
	gen := cb.Generation()
	s.writeOK(w, gen, &api.HealthzResponse{
		OK:              true,
		Files:           len(cb.Files()),
		Generation:      gen,
		PinnedSnapshots: cb.PinnedSnapshots(),
	})
}

// splitPeers parses the -peers flag: comma-separated base URLs,
// whitespace-tolerant, trailing slashes dropped.
func splitPeers(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func allFiles(cb *scan.Codebase) []int {
	files := make([]int, len(cb.Files()))
	for i := range files {
		files[i] = i
	}
	return files
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("kserve: encode response: %v", err)
	}
}

// writeJSONGen writes a JSON response stamped with the generation it was
// served against, both in the body (callers embed it) and in the
// X-KN-Generation header so clients that only look at headers can chain
// min_generation reads without parsing the body.
func (s *server) writeJSONGen(w http.ResponseWriter, code int, gen int64, v any) {
	w.Header().Set(api.GenerationHeader, strconv.FormatInt(gen, 10))
	writeJSON(w, code, v)
}

// writeOK is the 200 form of writeJSONGen.
func (s *server) writeOK(w http.ResponseWriter, gen int64, v any) {
	s.writeJSONGen(w, http.StatusOK, gen, v)
}

// writeError writes the uniform error envelope. The flat message is
// duplicated at "error_legacy" for one release so pre-envelope clients
// keep a string to read; see README for the deprecation schedule.
func (s *server) writeError(w http.ResponseWriter, code int, e *api.Error) {
	gen := s.inc.Codebase().Generation()
	writeErrorEnvelope(w, code, e, gen)
}

// httpError is the shorthand for errors that carry no retry hint.
func (s *server) httpError(w http.ResponseWriter, code int, errCode, msg string) {
	s.writeError(w, code, &api.Error{Code: errCode, Message: msg})
}

// writeErrorEnvelope is the package-level core of writeError, shared
// with the admission gate (which sheds before it has a server handle).
func writeErrorEnvelope(w http.ResponseWriter, code int, e *api.Error, gen int64) {
	w.Header().Set(api.GenerationHeader, strconv.FormatInt(gen, 10))
	// withObs stamps X-Trace-Id on the response header before the
	// handler runs, so every error envelope — including admission sheds,
	// which write through this path directly — carries the trace id the
	// client can feed to GET /trace/{id}.
	writeJSON(w, code, &api.ErrorResponse{
		Err:         e,
		LegacyError: e.Message,
		Generation:  gen,
		TraceID:     w.Header().Get(obs.TraceHeader),
	})
}
