package main

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"knighter/internal/api"
	"knighter/internal/checker"
	"knighter/internal/obs"
	"knighter/internal/scan"
	"knighter/internal/shard"
)

// shardLayer is the server's view of the shard fleet: the scatter
// client, the generation-feed client, and the fan-out counters. nil on
// an unsharded daemon — every caller nil-checks, so the single-host
// paths are untouched.
//
// Every replica holds the FULL corpus; the shard index only decides
// which partition of the scan work this replica owns. That is what
// makes "any replica can coordinate" and "fall back to the local
// snapshot" cheap: a coordinator is never missing a dead shard's
// files, it is just slower at scanning them.
type shardLayer struct {
	sc    *shard.Scatter
	ring  shard.Ring
	index int
	peers []string
	// feed is the generation feed through kcached (nil when the daemon
	// runs sharded without -cache-remote; changesets then reach peers
	// only via their own coordinators).
	feed *shard.FeedClient
	// nudge posts best-effort /converge pokes to peers after a commit.
	nudge *http.Client

	// convergeMu serializes feed replays so two concurrent triggers
	// (a nudge racing a sub-scan's lazy converge) cannot interleave
	// their ApplyChangeset calls.
	convergeMu sync.Mutex

	scatters      atomic.Int64
	degraded      atomic.Int64
	hedged        atomic.Int64
	subScans      atomic.Int64
	converges     atomic.Int64
	feedPublishes atomic.Int64

	// metric instruments; nil until registerShardMetrics (tests without
	// a registry run with hooks that skip them).
	fanoutDur   *obs.HistogramVec
	peerHealthy *obs.GaugeVec
}

// setupShard wires the server into a shard fleet: this replica owns
// partition index of count, peers lists every replica's base URL in
// shard-index order, and feedURL (usually the -cache-remote kcached)
// carries the generation feed. Call before registerMetrics and before
// serving.
func (s *server) setupShard(index, count int, peers []string, feedURL string, timeout, hedgeAfter time.Duration) {
	sh := &shardLayer{
		ring:  shard.Ring{Count: count},
		index: index,
		peers: peers,
		nudge: &http.Client{Timeout: 5 * time.Second},
	}
	if feedURL != "" {
		sh.feed = shard.NewFeedClient(feedURL, 5*time.Second)
	}
	hooks := shard.Hooks{
		FanoutDone: func(i int, d time.Duration) {
			if sh.fanoutDur != nil {
				sh.fanoutDur.With(strconv.Itoa(i)).Observe(d.Seconds())
			}
		},
		Degraded: func(i int) { sh.degraded.Add(1) },
		Hedged:   func(i int) { sh.hedged.Add(1) },
		PeerHealth: func(i int, healthy bool) {
			if sh.peerHealthy != nil {
				v := 0.0
				if healthy {
					v = 1
				}
				sh.peerHealthy.With(strconv.Itoa(i)).Set(v)
			}
		},
	}
	sh.sc = shard.NewScatter(shard.Config{
		Ring:       sh.ring,
		Self:       index,
		Peers:      peers,
		Timeout:    timeout,
		HedgeAfter: hedgeAfter,
	}, hooks)
	s.shard = sh
}

// registerShardMetrics publishes the scatter path on /metrics: the
// per-shard fan-out latency histogram, the degraded-scatter counter the
// fault-injection smoke asserts on, and the peer-health gauge vec.
func (s *server) registerShardMetrics(reg *obs.Registry) {
	sh := s.shard
	if sh == nil {
		return
	}
	sh.fanoutDur = reg.HistogramVec("shard_fanout_duration_seconds",
		"Wall time of one shard's partition within a scatter (however served), by shard.",
		nil, "shard")
	sh.peerHealthy = reg.GaugeVec("shard_peer_healthy",
		"Last-observed shard peer health: 1 healthy, 0 failed its last sub-request.", "peer")
	for i := range sh.peers {
		v := 0.0
		if h := sh.sc.PeerHealth(); i < len(h) && h[i] {
			v = 1
		}
		sh.peerHealthy.With(strconv.Itoa(i)).Set(v)
	}
	reg.CounterFunc("shard_scatters_total", "Coordinated scan/batch fan-outs served by this replica.",
		func() float64 { return float64(sh.scatters.Load()) })
	reg.CounterFunc("shard_degraded_scatters_total",
		"Scatter partitions recomputed on the local snapshot because their shard failed or timed out.",
		func() float64 { return float64(sh.degraded.Load()) })
	reg.CounterFunc("shard_hedged_sub_scans_total", "Local hedges started against slow shard sub-scans.",
		func() float64 { return float64(sh.hedged.Load()) })
	reg.CounterFunc("shard_sub_scans_total", "Shard-local sub-scans served for other coordinators.",
		func() float64 { return float64(sh.subScans.Load()) })
	reg.CounterFunc("shard_converges_total", "Generation-feed replays that brought this shard up to the fleet generation.",
		func() float64 { return float64(sh.converges.Load()) })
	reg.CounterFunc("shard_feed_publishes_total", "Changeset commits published to the generation feed.",
		func() float64 { return float64(sh.feedPublishes.Load()) })
}

// shardStats is the /stats view of the fan-out layer (nil when
// unsharded).
func (s *server) shardStats() *api.ShardStats {
	sh := s.shard
	if sh == nil {
		return nil
	}
	return &api.ShardStats{
		Index:          sh.index,
		Count:          sh.ring.Count,
		Peers:          sh.peers,
		Scatters:       sh.scatters.Load(),
		Degraded:       sh.degraded.Load(),
		Hedged:         sh.hedged.Load(),
		SubScansServed: sh.subScans.Load(),
		Converges:      sh.converges.Load(),
		FeedPublishes:  sh.feedPublishes.Load(),
		PeerHealthy:    sh.sc.PeerHealth(),
	}
}

// allPaths lists every corpus path in canonical file order — the global
// order the merge reassembles.
func allPaths(cb *scan.Codebase) []string {
	fs := cb.Files()
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.Name
	}
	return out
}

// scatterScan serves a coordinated /scan: pin the local snapshot (the
// fallback and the generation floor), scatter shard-local sub-scans,
// and merge the partials byte-identically to a single-host scan.
func (s *server) scatterScan(w http.ResponseWriter, r *http.Request, req *api.ScanRequest, ck checker.Checker) {
	cb := s.inc.Codebase()
	paths := req.Files
	if len(paths) == 0 {
		paths = allPaths(cb)
	}
	// The pinned snapshot serves three jobs: it is the local partition's
	// corpus, the fallback corpus for dead shards, and its generation is
	// the floor every sub-scan must reach (min_generation) — so however
	// a partition ends up being served, it sees at least this state.
	pin := cb.Pin()
	defer pin.Release()
	gen := pin.Snapshot.Generation()

	sub := *req
	sub.MinGeneration = gen
	cks := []checker.Checker{ck}
	job := shard.ScanJob{
		Req:      sub,
		Name:     ck.Name(),
		Paths:    paths,
		ClientID: r.Header.Get(shard.ClientIDHeader),
		Local: func(ctx context.Context, files []string) ([]*api.ScanResponse, error) {
			idx, err := s.resolveFiles(files)
			if err != nil {
				return nil, err
			}
			res := s.inc.RunFilesAt(pin.Snapshot, idx, cks, s.scanOptions(ctx, 0, req.Workers, req.FuncTimeoutMS))
			s.observeScan(ctx, res)
			return []*api.ScanResponse{api.ScanResult(ck.Name(), res, req.IncludeTrace, true)}, nil
		},
	}
	start := time.Now()
	merged, info, err := s.shard.sc.Scan(r.Context(), job)
	s.shard.scatters.Add(1)
	if err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadGateway, api.ErrUnavailable, "scatter failed: "+err.Error())
		return
	}
	merged.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.scans.Add(1)
	if merged.Canceled {
		s.scansCanceled.Add(1)
	}
	s.reportsServed.Add(int64(len(merged.Reports)))
	s.logScatter("scan", r, info, gen)
	attachTiming(r.Context(), &merged.TraceID, &merged.Timing, req.IncludeTiming)
	s.writeOK(w, merged.Generation, merged)
}

// scatterBatch serves a coordinated /batch over the checkers that
// compiled (cks, at request indices live); resp already carries the
// per-entry compile errors.
func (s *server) scatterBatch(w http.ResponseWriter, r *http.Request, req *api.BatchRequest, resp *api.BatchResponse, cks []checker.Checker, live []int) {
	cb := s.inc.Codebase()
	paths := req.Files
	if len(paths) == 0 {
		paths = allPaths(cb)
	}
	pin := cb.Pin()
	defer pin.Release()
	gen := pin.Snapshot.Generation()

	sub := api.BatchRequest{
		Checkers:      make([]string, len(cks)),
		Workers:       req.Workers,
		Concurrency:   req.Concurrency,
		FuncTimeoutMS: req.FuncTimeoutMS,
		MinGeneration: gen,
		IncludeTrace:  req.IncludeTrace,
	}
	names := make([]string, len(cks))
	for i := range cks {
		sub.Checkers[i] = req.Checkers[live[i]]
		names[i] = cks[i].Name()
	}
	job := shard.BatchJob{
		Req:      sub,
		Names:    names,
		Paths:    paths,
		ClientID: r.Header.Get(shard.ClientIDHeader),
		Local: func(ctx context.Context, files []string) ([]*api.ScanResponse, error) {
			idx, err := s.resolveFiles(files)
			if err != nil {
				return nil, err
			}
			// Sequential per checker: the fallback is the degraded path,
			// and each entry must match what RunFiles would return for
			// that checker alone — which RunBatch also guarantees.
			out := make([]*api.ScanResponse, len(cks))
			for i, ck := range cks {
				res := s.inc.RunFilesAt(pin.Snapshot, idx, []checker.Checker{ck},
					s.scanOptions(ctx, 0, req.Workers, req.FuncTimeoutMS))
				s.observeScan(ctx, res)
				out[i] = api.ScanResult(ck.Name(), res, req.IncludeTrace, true)
			}
			return out, nil
		},
	}
	start := time.Now()
	merged, info, err := s.shard.sc.Batch(r.Context(), job)
	s.shard.scatters.Add(1)
	if err != nil {
		s.scanErrors.Add(1)
		s.httpError(w, http.StatusBadGateway, api.ErrUnavailable, "scatter failed: "+err.Error())
		return
	}
	resp.Generation = gen
	agg := api.CacheStats{}
	for bi, m := range merged {
		resp.Results[live[bi]] = m
		s.reportsServed.Add(int64(len(m.Reports)))
		agg.Hits += m.Cache.Hits
		agg.Misses += m.Cache.Misses
		agg.Coalesced += m.Cache.Coalesced
		if m.Canceled {
			s.scansCanceled.Add(1)
		}
	}
	if n := agg.Hits + agg.Misses; n > 0 {
		agg.HitRate = float64(agg.Hits) / float64(n)
	}
	resp.CheckersRun = len(cks)
	resp.Cache = agg
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.logScatter("batch", r, info, gen)
	attachTiming(r.Context(), &resp.TraceID, &resp.Timing, req.IncludeTiming)
	s.batches.Add(1)
	s.scans.Add(int64(len(cks)))
	s.writeOK(w, resp.Generation, resp)
}

// logScatter leaves one access-log line per degraded or hedged scatter
// — quiet in the healthy steady state.
func (s *server) logScatter(route string, r *http.Request, info shard.Info, gen int64) {
	if info.Degraded == 0 && info.Hedged == 0 {
		return
	}
	tr := obs.TraceFrom(r.Context())
	id := ""
	if tr != nil {
		id = tr.ID
	}
	s.logf("scatter %s: shards=%d degraded=%d hedged=%d gen=%d trace=%s",
		route, info.Shards, info.Degraded, info.Hedged, gen, id)
}

// maybeConverge pulls the generation feed when a sharded replica
// notices a request wants a generation it has not reached: the lazy
// half of fleet convergence (the eager half is the post-commit nudge).
// Failures are not fatal here — awaitMinGeneration still runs after,
// and 409s if the corpus really cannot get there.
func (s *server) maybeConverge(ctx context.Context, min int64) {
	sh := s.shard
	if sh == nil || sh.feed == nil || min <= 0 {
		return
	}
	if s.inc.Codebase().Generation() >= min {
		return
	}
	if _, err := s.converge(ctx); err != nil {
		s.logf("converge: %v", err)
	}
}

// converge pulls the feed entries this replica is missing and replays
// them in generation order. Replays go through ApplyChangeset, so they
// invalidate stale cache entries and wake min_generation waiters
// exactly like a directly-served commit.
func (s *server) converge(ctx context.Context) (int, error) {
	sh := s.shard
	if sh == nil || sh.feed == nil {
		return 0, nil
	}
	sh.convergeMu.Lock()
	defer sh.convergeMu.Unlock()
	cb := s.inc.Codebase()
	page, err := sh.feed.Since(ctx, cb.Generation())
	if err != nil {
		return 0, err
	}
	applied := 0
	for _, e := range page.Entries {
		cur := cb.Generation()
		if e.Generation <= cur {
			continue // raced a direct commit of the same generation
		}
		if e.Generation != cur+1 {
			return applied, fmt.Errorf("feed gap: at generation %d, next feed entry is %d (fell out of the feed's retention window?)", cur, e.Generation)
		}
		changes := make([]scan.Change, 0, len(e.Changes))
		for _, c := range e.Changes {
			changes = append(changes, scan.Change{Path: c.Path, Func: c.Func, Source: c.Source})
		}
		if _, err := s.inc.ApplyChangeset(changes); err != nil {
			return applied, fmt.Errorf("replay generation %d: %w", e.Generation, err)
		}
		applied++
	}
	if applied > 0 {
		sh.converges.Add(1)
	}
	return applied, nil
}

// handleConverge is the eager convergence endpoint: coordinators poke
// it on peers after committing, and operators can poke it by hand. It
// sits behind the write gate because a replay IS a write.
func (s *server) handleConverge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.httpError(w, http.StatusMethodNotAllowed, api.ErrMethodNotAllowed, "POST only")
		return
	}
	if s.shard == nil || s.shard.feed == nil {
		s.httpError(w, http.StatusNotFound, api.ErrUnavailable, "not sharded, or no generation feed configured (-shard-count, -cache-remote)")
		return
	}
	start := time.Now()
	applied, err := s.converge(r.Context())
	if err != nil {
		s.writeError(w, http.StatusConflict, &api.Error{
			Code:    api.ErrGenerationUnavailable,
			Message: "converge: " + err.Error(),
		})
		return
	}
	gen := s.inc.Codebase().Generation()
	s.writeOK(w, gen, &api.ConvergeResponse{
		Generation: gen,
		Applied:    applied,
		ElapsedMS:  float64(time.Since(start).Microseconds()) / 1000,
	})
}

// shardPublish commits a mutation fleet-wide: publish (generation,
// changes) to the feed, then nudge every peer to converge. Both legs
// are asynchronous and best-effort — the local commit already
// succeeded, and a peer that misses the nudge converges lazily the
// next time a sub-scan arrives with a min_generation it has not seen.
// The mutation request's trace rides along on both legs (feed publish
// and nudges propagate X-Trace-Id/X-Span-Id), so the assembled trace
// of a changeset shows the fan-out it triggered.
func (s *server) shardPublish(ctx context.Context, gen int64, changes []api.Change) {
	sh := s.shard
	if sh == nil || sh.feed == nil {
		return
	}
	sh.feedPublishes.Add(1)
	entry := api.FeedEntry{Generation: gen, Changes: changes}
	tr := obs.TraceFrom(ctx)
	go func() {
		// Background-derived context: the legs outlive the request, but
		// keep its trace so the downstream fragments join the same tree.
		bctx := obs.WithTrace(context.Background(), tr)
		pctx, cancel := context.WithTimeout(bctx, 5*time.Second)
		defer cancel()
		if err := sh.feed.Publish(pctx, entry); err != nil {
			s.logf("feed publish generation %d: %v", gen, err)
			return
		}
		for i, peer := range sh.peers {
			if i == sh.index || peer == "" {
				continue
			}
			go func(peer string) {
				nctx, ncancel := context.WithTimeout(bctx, 5*time.Second)
				defer ncancel()
				req, err := http.NewRequestWithContext(nctx, http.MethodPost, peer+"/converge", nil)
				if err != nil {
					return
				}
				req.Header.Set("Content-Type", "application/json")
				obs.InjectHeaders(nctx, req.Header)
				resp, err := sh.nudge.Do(req)
				if err != nil {
					return
				}
				resp.Body.Close()
			}(peer)
		}
	}()
}
