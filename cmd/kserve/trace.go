package main

import (
	"net/http"
	"strconv"

	"knighter/internal/api"
	"knighter/internal/obs"
)

// serviceName identifies this process in span trees: "kserve-<index>"
// inside a sharded fleet (so the assembled trace shows WHICH replica
// served each partition), plain "kserve" on a single host.
func (s *server) serviceName() string {
	if sh := s.shard; sh != nil {
		return "kserve-" + strconv.Itoa(sh.index)
	}
	return "kserve"
}

// scanExemplars snapshots the scan-duration histogram's per-bucket
// exemplar trace ids for /stats (nil without metrics).
func (s *server) scanExemplars() map[string]string {
	if s.metrics == nil {
		return nil
	}
	return s.metrics.scanDur.Exemplars()
}

// handleTrace serves GET /trace/{id}: the cross-host assembled span
// tree for one trace.
//
// Two forms share the route. ?local=1 returns this process's raw
// fragment (the StoredTrace wire shape) and never fans out — it is what
// peers ask each other, and the loop guard. The default form gathers:
// this replica's own fragment plus, best-effort, every shard peer's and
// kcached's (per-peer timeout; a dead or sampled-out peer contributes
// nothing and the tree shows the gap as an orphan), then merges them
// into one offset-ordered tree. ?format=text renders the waterfall
// instead of JSON.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.traces == nil {
		s.httpError(w, http.StatusNotFound, api.ErrUnavailable, "tracing disabled (-trace-retain 0)")
		return
	}
	local, _ := s.traces.Get(id)
	if r.URL.Query().Get("local") == "1" {
		if local == nil {
			s.httpError(w, http.StatusNotFound, api.ErrNotFound, "trace not retained on this replica")
			return
		}
		s.writeOK(w, s.inc.Codebase().Generation(), local)
		return
	}
	frags := s.traceColl.Collect(r.Context(), id)
	if local != nil {
		frags = append([]*obs.StoredTrace{local}, frags...)
	}
	if len(frags) == 0 {
		s.httpError(w, http.StatusNotFound, api.ErrNotFound,
			"trace not retained anywhere reachable (sampled out, evicted, or never existed)")
		return
	}
	asm := obs.AssembleTrace(id, frags)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(asm.Waterfall()))
		return
	}
	s.writeOK(w, s.inc.Codebase().Generation(), asm)
}

// handleTraces serves GET /traces: the local retained-trace index,
// newest first. ?limit=N bounds it (default 50); ?slow=1 restricts to
// traces kept by the slow class — the "what was slow lately" triage
// listing.
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.httpError(w, http.StatusNotFound, api.ErrUnavailable, "tracing disabled (-trace-retain 0)")
		return
	}
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			limit = n
		}
	}
	list := s.traces.List(limit, r.URL.Query().Get("slow") == "1")
	s.writeOK(w, s.inc.Codebase().Generation(), &api.TraceListResponse{Traces: list})
}
