package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"testing"

	"knighter/internal/api"
	"knighter/internal/ckdsl"
	"knighter/internal/minic"
	"knighter/internal/scan"
)

// TestStressScansChangesetsAndSaturation is the concurrency-and-
// backpressure acceptance test, meant to run under -race: many clients
// hammer /scan, /batch, and /changeset against tight read and write
// admission gates at once. It must terminate (no deadlock between the
// admission queues, the snapshot pin registry, and the writer ticket
// queue), every shed response must carry Retry-After, and once the storm
// drains a quiesced scan must be byte-identical to a cold scan of
// whatever corpus state the interleaved changesets produced.
func TestStressScansChangesetsAndSaturation(t *testing.T) {
	srv, ts := newTestServerWithGates(t, newAdmission(2, 2, 0), newAdmission(1, 2, 0))
	cb := srv.inc.Codebase()
	path := cb.Files()[0].Name
	canonical := minic.FormatFile(cb.Files()[0])
	altPath := cb.Files()[1].Name
	altCanonical := minic.FormatFile(cb.Files()[1])

	post := func(endpoint string, body any) (*http.Response, error) {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		return http.Post(ts.URL+endpoint, "application/json", bytes.NewReader(data))
	}

	const clients = 8
	const iters = 4
	var wg sync.WaitGroup
	errs := make(chan string, clients*iters)
	var mu sync.Mutex
	statuses := map[int]int{}
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var resp *http.Response
				var err error
				switch (g + i) % 3 {
				case 0:
					resp, err = post("/scan", api.ScanRequest{Checker: testChecker})
				case 1:
					resp, err = post("/batch", api.BatchRequest{
						Checkers: []string{testChecker, testCheckerB}, Concurrency: 2,
					})
				case 2:
					resp, err = post("/changeset", api.ChangesetRequest{Changes: []api.Change{
						{Path: path, Source: canonical},
						{Path: altPath, Source: altCanonical},
					}})
				}
				if err != nil {
					errs <- err.Error()
					continue
				}
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
				switch resp.StatusCode {
				case http.StatusOK:
					// fine
				case http.StatusTooManyRequests:
					if ra := resp.Header.Get("Retry-After"); ra == "" {
						errs <- "429 without Retry-After"
					} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
						errs <- fmt.Sprintf("bad Retry-After %q", ra)
					}
				default:
					errs <- fmt.Sprintf("unexpected status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	// The books must balance exactly across BOTH gates: every request
	// either completed or was shed, and both gates are fully drained.
	stats := getStats(t, ts)
	if stats.Admission == nil || stats.WriteAdmission == nil {
		t.Fatal("admission stats missing")
	}
	total := stats.Admission.Admitted + stats.Admission.Shed +
		stats.WriteAdmission.Admitted + stats.WriteAdmission.Shed
	if total != clients*iters {
		t.Fatalf("read admitted %d + shed %d + write admitted %d + shed %d = %d, want %d",
			stats.Admission.Admitted, stats.Admission.Shed,
			stats.WriteAdmission.Admitted, stats.WriteAdmission.Shed, total, clients*iters)
	}
	if stats.Admission.Inflight != 0 || stats.Admission.Queued != 0 {
		t.Fatalf("read gate not drained after storm: %+v", stats.Admission)
	}
	if stats.WriteAdmission.Inflight != 0 || stats.WriteAdmission.Queued != 0 {
		t.Fatalf("write gate not drained after storm: %+v", stats.WriteAdmission)
	}
	if statuses[http.StatusOK] == 0 {
		t.Fatal("no request was admitted during the storm")
	}

	// Post-drain equivalence: a quiesced request must serve exactly what
	// a cold scan of the final corpus state produces, whatever order the
	// changesets landed in.
	quiesced := postScan(t, ts, api.ScanRequest{Checker: testChecker})
	cold, err := scan.NewCodebase(cb.Corpus)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := ckdsl.CompileSource(testChecker)
	if err != nil {
		t.Fatal(err)
	}
	want := cold.RunOne(ck, scan.Options{Workers: 1})
	if len(quiesced.Reports) != len(want.Reports) {
		t.Fatalf("post-drain scan has %d reports, cold scan of final corpus has %d",
			len(quiesced.Reports), len(want.Reports))
	}
	for i, rep := range want.Reports {
		got := quiesced.Reports[i]
		if got.File != rep.File || got.Func != rep.Func || got.Line != rep.Pos.Line ||
			got.Col != rep.Pos.Col || got.Message != rep.Message {
			t.Fatalf("post-drain report %d = %+v, cold report = %+v", i, got, rep)
		}
	}
	if quiesced.FuncsScanned != want.FuncsScanned {
		t.Fatalf("post-drain scanned %d funcs, cold scan %d", quiesced.FuncsScanned, want.FuncsScanned)
	}
}

// TestStressHealthzDuringSaturation: liveness and stats must answer even
// while the gate is saturated — they are deliberately outside admission
// control.
func TestStressHealthzDuringSaturation(t *testing.T) {
	srv, ts := newTestServerWithAdmission(t, newAdmission(1, 1, 0))
	// Saturate: occupy the inflight slot and fill the queue.
	srv.adm.tokens <- struct{}{}
	defer func() { <-srv.adm.tokens }()
	srv.adm.queued.Store(srv.adm.maxQueued)
	defer srv.adm.queued.Store(0)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under saturation = %d", resp.StatusCode)
	}
	if stats := getStats(t, ts); stats.Admission.Queued != srv.adm.maxQueued {
		t.Fatalf("stats under saturation = %+v", stats.Admission)
	}
	// And a scan-shaped request sheds instead of hanging.
	data, _ := json.Marshal(api.ScanRequest{Checker: testChecker})
	sresp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("scan under saturation = %d, want 429", sresp.StatusCode)
	}
}
