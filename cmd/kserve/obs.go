package main

import (
	"context"
	"log"
	"net/http"
	"time"

	"knighter/internal/engine"
	"knighter/internal/obs"
	"knighter/internal/scan"
)

// serverMetrics holds kserve's /metrics instrumentation: HTTP-level
// request counters and latency, the scan-level duration histogram, the
// per-stage scan breakdown, and counter/gauge funcs over state that
// already exists as atomics elsewhere (service counters, admission
// gate, engine abort counters, remote-tier breaker). The store tiers
// register their own families via store.Instrument before this runs.
type serverMetrics struct {
	reg      *obs.Registry
	httpReqs *obs.CounterVec
	httpDur  *obs.HistogramVec
	scanDur  *obs.Histogram
	stageDur *obs.HistogramVec
	gcSweep  *obs.Histogram
	commit   *obs.Histogram
}

// registerMetrics wires the server's observable state into reg and
// installs the per-scan stage observer. Call once at boot, after the
// store composition is built and before serving.
func (s *server) registerMetrics(reg *obs.Registry) {
	m := &serverMetrics{
		reg: reg,
		httpReqs: reg.CounterVec("http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		httpDur: reg.HistogramVec("http_request_duration_seconds",
			"Wall time of one HTTP request, queueing included.", nil, "route"),
		scanDur: reg.Histogram("scan_duration_seconds",
			"Wall time of one checker scan over the corpus (each batch entry counts once).", nil),
		stageDur: reg.HistogramVec("scan_stage_duration_seconds",
			"Aggregate time in one scan stage per scan; concurrent stages sum worker time.",
			nil, "stage"),
		gcSweep: reg.Histogram("disk_gc_sweep_duration_seconds",
			"Wall time of one disk-tier GC sweep.", nil),
		commit: reg.Histogram("changeset_commit_duration_seconds",
			"Wall time from mutation request to committed generation swap.", nil),
	}
	s.metrics = m
	s.inc.SetStageObserver(m)

	reg.CounterFunc("scans_total", "Checker scans served (batch entries count individually).",
		func() float64 { return float64(s.scans.Load()) })
	reg.CounterFunc("scan_errors_total", "Requests rejected before scanning (bad JSON, bad checker, unknown file).",
		func() float64 { return float64(s.scanErrors.Load()) })
	reg.CounterFunc("scans_canceled_total", "Scans aborted by client disconnect.",
		func() float64 { return float64(s.scansCanceled.Load()) })
	reg.CounterFunc("reports_served_total", "Bug reports returned across all scans.",
		func() float64 { return float64(s.reportsServed.Load()) })
	reg.CounterFunc("corpus_mutations_total", "Corpus mutations applied (patches + changesets).",
		func() float64 { return float64(s.patches.Load() + s.changesets.Load()) })
	reg.GaugeFunc("corpus_generation", "Corpus generation counter; bumps once per mutation.",
		func() float64 { return float64(s.inc.Codebase().Generation()) })
	reg.GaugeFunc("corpus_pinned_snapshots", "Superseded snapshot generations still pinned by in-flight scans.",
		func() float64 { return float64(s.inc.Codebase().PinnedSnapshots()) })
	reg.CounterFunc("async_changesets_total", "Changesets accepted on the async path (generation token returned before commit).",
		func() float64 { return float64(s.asyncChangesets.Load()) })
	reg.CounterFunc("disk_gc_removed_total", "Disk-tier entries removed by GC sweeps.",
		func() float64 { return float64(s.gcRemoved.Load()) })

	// Engine abort counters: process-wide, surfaced here because kserve
	// is the process. A warm corpus whose engine_timeouts_total is
	// climbing has a pathological function re-timing-out on every scan —
	// invisible in hit rates, obvious here.
	reg.CounterFunc("engine_timeouts_total", "Per-function analyses cut short by the time budget.",
		func() float64 { return float64(engine.CounterTotals().Timeouts) })
	reg.CounterFunc("engine_cancels_total", "Per-function analyses aborted by request cancellation.",
		func() float64 { return float64(engine.CounterTotals().Cancels) })
	reg.CounterFunc("engine_crashes_total", "Checker panics recovered into runtime errors.",
		func() float64 { return float64(engine.CounterTotals().Crashes) })

	if s.remote != nil {
		// Breaker state as a gauge: 0 closed (healthy), 1 open (shedding
		// to the next tier).
		reg.GaugeFunc("remote_breaker_state", "Fleet-tier circuit breaker: 0 closed, 1 open.",
			func() float64 {
				if s.remote.RemoteStats().BreakerOpen {
					return 1
				}
				return 0
			})
		reg.CounterFunc("remote_breaker_opens_total", "Times the fleet-tier breaker tripped open.",
			func() float64 { return float64(s.remote.RemoteStats().BreakerOpens) })
	}
	s.adm.register(reg, "admission")
	s.wadm.register(reg, "write_admission")
	s.registerShardMetrics(reg)
	s.traces.Register(reg)
	if s.traces != nil {
		reg.CounterFunc("trace_spans_dropped_total",
			"Spans discarded by the per-trace span cap (process-wide).",
			func() float64 { return float64(obs.DroppedSpansTotal()) })
	}
	obs.RegisterBuildInfo(reg, func() float64 { return time.Since(s.started).Seconds() })
}

// ObserveStage implements scan.StageObserver onto the stage histogram.
func (m *serverMetrics) ObserveStage(stage string, d time.Duration) {
	m.stageDur.With(stage).Observe(d.Seconds())
}

// observeScan records one finished scan (no-op without metrics). The
// request's trace id rides along as the scan histogram's exemplar, so a
// bucket spike on the dashboard links straight to a retained trace.
func (s *server) observeScan(ctx context.Context, res *scan.Result) {
	if s.metrics == nil {
		return
	}
	if tr := obs.TraceFrom(ctx); tr != nil {
		s.metrics.scanDur.ObserveExemplar(res.Elapsed.Seconds(), tr.ID)
		return
	}
	s.metrics.scanDur.Observe(res.Elapsed.Seconds())
}

// observeCommit records one committed corpus mutation — request arrival
// to generation swap (no-op without metrics).
func (s *server) observeCommit(d time.Duration) {
	if s.metrics != nil {
		s.metrics.commit.Observe(d.Seconds())
	}
}

// observeGCSweep records one disk GC sweep (no-op without metrics).
func (s *server) observeGCSweep(d time.Duration) {
	if s.metrics != nil {
		s.metrics.gcSweep.Observe(d.Seconds())
	}
}

// withObs is the outermost per-request middleware: it mints the
// request's trace (honoring an inbound X-Trace-Id / X-Span-Id so a
// coordinating peer's sub-scan joins the caller's span tree), carries
// it on the context where the scheduler, the scatter fan-out, and the
// remote tier pick it up, records the HTTP-level metrics, writes the
// access log line, emits the slow-request report when the request
// outlives -slow-scan, and offers the finished trace to the
// tail-sampled trace store.
//
// It wraps OUTSIDE the admission gate so queue wait is part of the
// request's measured life — the latency the client actually saw.
func (s *server) withObs(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tr := obs.NewTraceFor(s.serviceName(), r.Header.Get(obs.TraceHeader), r.Header.Get(obs.SpanHeader))
		w.Header().Set(obs.TraceHeader, tr.ID)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r.WithContext(obs.WithTrace(r.Context(), tr)))
		elapsed := time.Since(start)
		if s.metrics != nil {
			s.metrics.httpReqs.With(route, statusClass(sw.code)).Inc()
			s.metrics.httpDur.With(route).ObserveExemplar(elapsed.Seconds(), tr.ID)
		}
		status := ""
		if sw.code >= 400 {
			status = statusClass(sw.code)
		}
		tr.CloseRoot(route, status, elapsed)
		s.traces.Add(tr, obs.TraceMeta{
			Route:   route,
			Status:  sw.code,
			Elapsed: elapsed,
			Errored: sw.code >= 400,
		})
		s.logf("%s %s %d %dB %.3fms trace=%s",
			r.Method, r.URL.Path, sw.code, sw.bytes,
			float64(elapsed.Microseconds())/1000, tr.ID)
		if s.slowScan > 0 && elapsed >= s.slowScan {
			// The triage line: the trace id here feeds straight into
			// GET /trace/{id}, which returns the assembled cross-host
			// span tree (this host's stages plus every shard's and
			// kcached's fragments) — see README § Observability.
			s.logf("slow request: route=%s trace=%s elapsed=%.1fms threshold=%s timeline=[%s]",
				route, tr.ID, float64(elapsed.Microseconds())/1000, s.slowScan, tr)
		}
	}
}

// logf writes to the server's access logger (injectable for tests).
func (s *server) logf(format string, args ...any) {
	if s.accessLog != nil {
		s.accessLog.Printf(format, args...)
		return
	}
	log.Printf("kserve: "+format, args...)
}

// statusClass buckets a status code for the http_requests_total label —
// per-code series would be unbounded in principle and useless in
// practice; the dashboards care about 2xx/4xx/5xx/429.
func statusClass(code int) string {
	switch {
	case code == http.StatusTooManyRequests:
		return "429"
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// statusWriter captures the response code and size for logging and the
// per-code counter.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}
