package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"knighter/internal/api"
	"knighter/internal/kernel"
	"knighter/internal/minic"
	"knighter/internal/obs"
	"knighter/internal/scan"
	"knighter/internal/shard"
	"knighter/internal/store"
)

// newShardFleet boots n kserve replicas over the same corpus, each owning
// one shard, each able to coordinate. feedURL wires the generation feed
// (empty = no feed, so changesets stay local to their coordinator).
func newShardFleet(t *testing.T, n int, feedURL string) ([]*server, []*httptest.Server) {
	t.Helper()
	srvs := make([]*server, n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range srvs {
		corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.1})
		cb, err := scan.NewCodebase(corpus)
		if err != nil {
			t.Fatal(err)
		}
		srvs[i] = newServer(scan.NewIncremental(cb, store.NewMemory(0)))
		tss[i] = httptest.NewServer(srvs[i].routes())
		t.Cleanup(tss[i].Close)
		urls[i] = tss[i].URL
	}
	for i, srv := range srvs {
		srv.setupShard(i, n, urls, feedURL, 10*time.Second, 0)
		srv.registerMetrics(obs.NewRegistry("kserve"))
	}
	return srvs, tss
}

// sameScan asserts the deterministic fields of two scan responses match:
// the byte-identity contract covers reports (order included), runtime
// errors, counters, and truncation — not timings or cache counters.
func sameScan(t *testing.T, label string, got, want *api.ScanResponse) {
	t.Helper()
	if gj, wj := reportsJSON(t, got), reportsJSON(t, want); gj != wj {
		t.Fatalf("%s: reports diverge\n got: %s\nwant: %s", label, gj, wj)
	}
	if got.FilesScanned != want.FilesScanned || got.FuncsScanned != want.FuncsScanned {
		t.Fatalf("%s: scanned files=%d/%d funcs=%d/%d", label,
			got.FilesScanned, want.FilesScanned, got.FuncsScanned, want.FuncsScanned)
	}
	if got.Truncated != want.Truncated {
		t.Fatalf("%s: truncated=%v, want %v", label, got.Truncated, want.Truncated)
	}
	if len(got.RuntimeErrs) != len(want.RuntimeErrs) {
		t.Fatalf("%s: %d runtime errs, want %d", label, len(got.RuntimeErrs), len(want.RuntimeErrs))
	}
	if got.Generation != want.Generation {
		t.Fatalf("%s: generation=%d, want %d", label, got.Generation, want.Generation)
	}
}

// TestShardedScanByteIdentical is the tentpole acceptance criterion: a
// scatter/gathered scan — whole corpus, explicit file subset, and
// MaxReports-truncated — returns byte-identical reports to a single-host
// scan, from any coordinator.
func TestShardedScanByteIdentical(t *testing.T) {
	_, single := newTestServer(t)
	srvs, tss := newShardFleet(t, 3, "")

	req := api.ScanRequest{Checker: testChecker}
	want := postScan(t, single, req)
	if len(want.Reports) == 0 {
		t.Fatal("fixture checker found no reports; the equivalence check is vacuous")
	}
	sameScan(t, "full corpus", postScan(t, tss[0], req), want)
	// Any replica can coordinate, not just shard 0.
	sameScan(t, "coordinator=1", postScan(t, tss[1], req), want)

	// Truncation is applied by the coordinator after the merge, so the
	// capped prefix is the same bytes a single host would keep.
	capped := api.ScanRequest{Checker: testChecker, MaxReports: 3}
	sameScan(t, "max_reports", postScan(t, tss[0], capped), postScan(t, single, capped))

	// An explicit file subset partitions the same way.
	files := srvs[0].inc.Codebase().Files()
	var subset []string
	for i := 0; i < len(files); i += 3 {
		subset = append(subset, files[i].Name)
	}
	sub := api.ScanRequest{Checker: testChecker, Files: subset}
	sameScan(t, "file subset", postScan(t, tss[0], sub), postScan(t, single, sub))

	if srvs[0].shard.scatters.Load() == 0 {
		t.Fatal("coordinator recorded no scatters")
	}
	if subs := srvs[1].shard.subScans.Load() + srvs[2].shard.subScans.Load(); subs == 0 {
		t.Fatal("no peer served a shard-local sub-scan — the work never fanned out")
	}
	if d := srvs[0].shard.degraded.Load(); d != 0 {
		t.Fatalf("healthy fleet recorded %d degraded scatters", d)
	}
	st := getStats(t, tss[0])
	if st.Shards == nil || st.Shards.Count != 3 || st.Shards.Scatters == 0 {
		t.Fatalf("/stats shards = %+v", st.Shards)
	}
}

// TestShardedScanShardDeathFallsBack kills one shard owner outright and
// asserts the fault-injection acceptance criterion: zero non-2xx
// client responses, byte-identical merged output (served degraded from
// the coordinator's local snapshot), and the degraded counter visible
// on /stats and /metrics.
func TestShardedScanShardDeathFallsBack(t *testing.T) {
	_, single := newTestServer(t)
	srvs, tss := newShardFleet(t, 3, "")
	tss[2].Close() // SIGKILL stand-in: connections refused from now on

	req := api.ScanRequest{Checker: testChecker}
	want := postScan(t, single, req)
	// postScan fails the test on any non-200, so one passing call IS the
	// zero-non-2xx assertion.
	sameScan(t, "shard death", postScan(t, tss[0], req), want)

	if d := srvs[0].shard.degraded.Load(); d == 0 {
		t.Fatal("dead shard produced no degraded scatter")
	}
	st := getStats(t, tss[0])
	if st.Shards.Degraded == 0 {
		t.Fatalf("/stats degraded_scatters = %d, want > 0", st.Shards.Degraded)
	}
	if len(st.Shards.PeerHealthy) != 3 || st.Shards.PeerHealthy[2] {
		t.Fatalf("/stats peer health = %v, want shard 2 unhealthy", st.Shards.PeerHealthy)
	}
	metrics := getMetrics(t, tss[0])
	for _, name := range []string{
		"kserve_shard_degraded_scatters_total",
		"kserve_shard_fanout_duration_seconds",
		"kserve_shard_peer_healthy",
		"kserve_shard_scatters_total",
	} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
	if strings.Contains(metrics, "kserve_shard_degraded_scatters_total 0\n") {
		t.Fatal("/metrics still reports zero degraded scatters")
	}
}

// TestShardedBatchByteIdentical: /batch scatters per checker and merges
// per entry; compile errors keep their request positions.
func TestShardedBatchByteIdentical(t *testing.T) {
	_, single := newTestServer(t)
	_, tss := newShardFleet(t, 3, "")

	req := api.BatchRequest{Checkers: []string{
		testChecker,
		"checker broken {", // keeps its slot as a per-entry error
		strings.Replace(testChecker, "serve_npd", "serve_npd_b", 1),
	}}
	var want, got api.BatchResponse
	if code := postJSON(t, single, "/batch", req, &want); code != 200 {
		t.Fatalf("single-host /batch = %d", code)
	}
	if code := postJSON(t, tss[0], "/batch", req, &got); code != 200 {
		t.Fatalf("sharded /batch = %d", code)
	}
	if got.CheckersRun != want.CheckersRun || got.CheckerErrors != want.CheckerErrors {
		t.Fatalf("run=%d/%d errors=%d/%d", got.CheckersRun, want.CheckersRun, got.CheckerErrors, want.CheckerErrors)
	}
	if got.Results[1].Error == "" || want.Results[1].Error == "" {
		t.Fatal("broken checker's per-entry error was lost")
	}
	for _, i := range []int{0, 2} {
		sameScan(t, "batch entry", got.Results[i], want.Results[i])
	}
}

// TestShardedChangesetConvergesFleetWide: a changeset committed on one
// coordinator reaches every replica through the kcached generation feed
// (publish + converge nudge), and post-commit scans are byte-identical
// to a single host that applied the same changeset.
func TestShardedChangesetConvergesFleetWide(t *testing.T) {
	feed := shard.NewFeed(0)
	feedTS := httptest.NewServer(feed.Handler())
	t.Cleanup(feedTS.Close)
	srvs, tss := newShardFleet(t, 3, feedTS.URL)
	_, single := newTestServer(t)

	f0 := srvs[0].inc.Codebase().Files()[0]
	change := api.Change{Path: f0.Name, Source: minic.FormatFile(f0)}
	body := api.ChangesetRequest{Changes: []api.Change{change}}
	var cr api.ChangesetResponse
	if code := postJSON(t, tss[0], "/changeset", body, &cr); code != 200 {
		t.Fatalf("sharded /changeset = %d", code)
	}
	var single2 api.ChangesetResponse
	if code := postJSON(t, single, "/changeset", body, &single2); code != 200 {
		t.Fatalf("single-host /changeset = %d", code)
	}

	// The publish + nudge pipeline is asynchronous; peers must converge
	// to the committed generation on their own.
	deadline := time.Now().Add(5 * time.Second)
	for _, srv := range srvs[1:] {
		for srv.inc.Codebase().Generation() < cr.Generation {
			if time.Now().After(deadline) {
				t.Fatalf("peer stuck at generation %d, fleet committed %d",
					srv.inc.Codebase().Generation(), cr.Generation)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if c := srvs[1].shard.converges.Load() + srvs[2].shard.converges.Load(); c == 0 {
		t.Fatal("no peer replayed the feed")
	}
	if srvs[0].shard.feedPublishes.Load() == 0 {
		t.Fatal("coordinator never published to the feed")
	}

	// Read-your-writes across the fleet: a min_generation scan through a
	// DIFFERENT coordinator sees the commit, byte-identical to the
	// single host.
	req := api.ScanRequest{Checker: testChecker, MinGeneration: cr.Generation}
	want := postScan(t, single, req)
	sameScan(t, "post-changeset", postScan(t, tss[1], req), want)
}

// TestCostWeightedAdmission: the cost charge (checkers x files) sheds an
// oversized concurrent request with 429, always admits when idle, and is
// visible in /stats and /metrics.
func TestCostWeightedAdmission(t *testing.T) {
	a := newAdmission(4, 4, 0)
	a.maxCost = 10

	rec := httptest.NewRecorder()
	release, ok := a.admitCost(rec, 8)
	if !ok {
		t.Fatal("first request shed by an empty gate")
	}
	rec2 := httptest.NewRecorder()
	if _, ok := a.admitCost(rec2, 8); ok {
		t.Fatal("over-budget concurrent request admitted")
	}
	if rec2.Code != 429 {
		t.Fatalf("cost shed status = %d, want 429", rec2.Code)
	}
	if rec2.Header().Get("Retry-After") == "" {
		t.Fatal("cost shed carries no Retry-After")
	}
	if !strings.Contains(rec2.Body.String(), api.ErrOverloaded) {
		t.Fatalf("cost shed body = %s", rec2.Body.String())
	}
	if a.costShed.Load() != 1 {
		t.Fatalf("costShed = %d, want 1", a.costShed.Load())
	}
	release()
	release() // release is idempotent: a double call must not go negative

	// Idle admits ANY cost: a request bigger than the whole budget must
	// still be servable, just never concurrently with other work.
	rec3 := httptest.NewRecorder()
	bigRelease, ok := a.admitCost(rec3, 1000)
	if !ok {
		t.Fatal("idle gate shed an oversized request")
	}
	bigRelease()
	if got := a.costOutstanding.Load(); got != 0 {
		t.Fatalf("outstanding cost = %d after all releases, want 0", got)
	}
	snap := a.snapshot()
	if snap.MaxCost != 10 || snap.CostShed != 1 || snap.CostWeight != 0 {
		t.Fatalf("snapshot cost fields = %+v", snap)
	}

	// Service-level exposure: /stats carries the admission cost fields
	// and /metrics the admission_cost_weight gauge.
	read := newAdmission(2, 8, 0)
	read.maxCost = 1 << 30
	srv, ts := newTestServerWithAdmission(t, read)
	srv.registerMetrics(obs.NewRegistry("kserve"))
	postScan(t, ts, api.ScanRequest{Checker: testChecker})
	st := getStats(t, ts)
	if st.Admission == nil || st.Admission.MaxCost != 1<<30 {
		t.Fatalf("/stats admission = %+v", st.Admission)
	}
	metrics := getMetrics(t, ts)
	for _, name := range []string{"kserve_admission_cost_weight", "kserve_admission_cost_shed_total"} {
		if !strings.Contains(metrics, name) {
			t.Fatalf("/metrics missing %s", name)
		}
	}
}

// TestRequestCost: empty file list means the whole corpus.
func TestRequestCost(t *testing.T) {
	srv, _ := newTestServer(t)
	n := len(srv.inc.Codebase().Files())
	if got := srv.requestCost(1, nil); got != int64(n) {
		t.Fatalf("requestCost(1, nil) = %d, want corpus size %d", got, n)
	}
	if got := srv.requestCost(5, nil); got != int64(5*n) {
		t.Fatalf("requestCost(5, nil) = %d, want %d", got, 5*n)
	}
	if got := srv.requestCost(2, []string{"a.c", "b.c", "c.c"}); got != 6 {
		t.Fatalf("requestCost(2, 3 files) = %d, want 6", got)
	}
	if got := srv.requestCost(0, []string{"a.c"}); got != 1 {
		t.Fatalf("requestCost(0, 1 file) = %d, want 1 (floor)", got)
	}
}
