package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAdmissionPerClientFairness pins the fairness contract: a chatty
// client saturates its own per-client queue allowance and gets shed,
// while another client still queues into the same (non-full) global
// queue.
func TestAdmissionPerClientFairness(t *testing.T) {
	adm := newAdmission(1, 8, 2)
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	h := adm.wrap(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	do := func(client string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL, nil)
		if err != nil {
			return -1
		}
		req.Header.Set("X-Client-ID", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return -1
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
			t.Error("shed response missing Retry-After")
		}
		return resp.StatusCode
	}

	// Occupy the single inflight slot so everything else queues.
	occupier := make(chan int, 1)
	go func() { occupier <- do("occupier") }()
	<-started

	// Chatty client fires 5 concurrent requests: 2 fill its per-client
	// allowance and queue, 3 are shed by the fairness bound.
	var wg sync.WaitGroup
	codes := make(chan int, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- do("chatty")
		}()
	}
	waitFor(t, "chatty's overflow to shed", func() bool {
		s := adm.snapshot()
		return s.FairnessShed == 3 && s.Queued == 2
	})

	// A polite client is unaffected: the global queue (8) has room.
	polite := make(chan int, 1)
	go func() { polite <- do("polite") }()
	waitFor(t, "polite client to queue", func() bool {
		return adm.snapshot().Queued == 3
	})
	if s := adm.snapshot(); s.QueuedClients != 2 {
		t.Fatalf("queued clients = %d, want 2 (chatty + polite)", s.QueuedClients)
	}

	// Drain: everyone queued completes; only the fairness overflow saw
	// 429s.
	close(release)
	wg.Wait()
	shed, ok := 0, 0
	for i := 0; i < 5; i++ {
		switch <-codes {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatal("unexpected status")
		}
	}
	if ok != 2 || shed != 3 {
		t.Fatalf("chatty: %d ok / %d shed, want 2/3", ok, shed)
	}
	if code := <-polite; code != http.StatusOK {
		t.Fatalf("polite client got %d", code)
	}
	if code := <-occupier; code != http.StatusOK {
		t.Fatalf("occupier got %d", code)
	}
	s := adm.snapshot()
	if s.Shed != 3 || s.FairnessShed != 3 || s.Admitted != 4 || s.Queued != 0 || s.QueuedClients != 0 {
		t.Fatalf("final snapshot = %+v", s)
	}
}

// TestAdmissionFairnessDisabled: with the per-client bound off, one
// client may occupy the whole queue (the pre-fairness behavior).
func TestAdmissionFairnessDisabled(t *testing.T) {
	adm := newAdmission(1, 4, 0)
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	h := adm.wrap(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	do := func() {
		req, _ := http.NewRequest(http.MethodPost, ts.URL, nil)
		req.Header.Set("X-Client-ID", "chatty")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	go do()
	<-started
	for i := 0; i < 4; i++ {
		go do()
	}
	waitFor(t, "one client to fill the whole queue", func() bool {
		return adm.snapshot().Queued == 4
	})
	if s := adm.snapshot(); s.FairnessShed != 0 {
		t.Fatalf("fairness shed fired with the bound disabled: %+v", s)
	}
	close(release)
}
