package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"knighter/internal/kernel"
	"knighter/internal/scan"
	"knighter/internal/store"
)

const testChecker = `
checker serve_npd {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.1})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(scan.NewIncremental(cb, store.NewMemory(0)))
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postScan(t *testing.T, ts *httptest.Server, body any) *scanResponse {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /scan status = %d", resp.StatusCode)
	}
	var out scanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func getStats(t *testing.T, ts *httptest.Server) *statsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["ok"] != true {
		t.Fatalf("healthz = %v", out)
	}
}

// TestRepeatScanServedFromCache is the service-level acceptance
// criterion: the second POST /scan for the same checker must be served
// >= 90% from cache, observable both in the response and in GET /stats.
func TestRepeatScanServedFromCache(t *testing.T) {
	_, ts := newTestServer(t)
	req := scanRequest{Checker: testChecker}

	first := postScan(t, ts, req)
	if first.Cache.Hits != 0 {
		t.Fatalf("cold scan had %d cache hits, want 0", first.Cache.Hits)
	}
	if len(first.Reports) == 0 {
		t.Fatal("cold scan found no reports; corpus seeds devm_kzalloc NPD bugs")
	}
	before := getStats(t, ts)

	second := postScan(t, ts, req)
	if second.Cache.HitRate < 0.9 {
		t.Fatalf("second scan hit rate = %.3f, want >= 0.9", second.Cache.HitRate)
	}
	a, _ := json.Marshal(first.Reports)
	b, _ := json.Marshal(second.Reports)
	if !bytes.Equal(a, b) {
		t.Fatal("cached scan reports differ from cold scan reports")
	}

	after := getStats(t, ts)
	dHits := after.Store.Hits - before.Store.Hits
	dMisses := after.Store.Misses - before.Store.Misses
	if dHits+dMisses == 0 {
		t.Fatal("stats did not move between scans")
	}
	if rate := float64(dHits) / float64(dHits+dMisses); rate < 0.9 {
		t.Fatalf("store-level hit rate for second scan = %.3f, want >= 0.9", rate)
	}
	if after.Scans != 2 {
		t.Fatalf("scans counter = %d, want 2", after.Scans)
	}
}

// TestScanFileSubset exercises the files filter and per-file caching:
// scanning one file warms only that file's functions.
func TestScanFileSubset(t *testing.T) {
	srv, ts := newTestServer(t)
	path := srv.inc.Codebase().Files[0].Name
	one := postScan(t, ts, scanRequest{Checker: testChecker, Files: []string{path}})
	if one.FilesScanned != 1 {
		t.Fatalf("files scanned = %d, want 1", one.FilesScanned)
	}
	again := postScan(t, ts, scanRequest{Checker: testChecker, Files: []string{path}})
	if again.Cache.Misses != 0 {
		t.Fatalf("re-scan of one file missed %d times, want 0", again.Cache.Misses)
	}
}

func TestScanRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad JSON", "{", http.StatusBadRequest},
		{"missing checker", "{}", http.StatusBadRequest},
		{"broken DSL", `{"checker": "checker x {"}`, http.StatusUnprocessableEntity},
		{"unknown file", fmt.Sprintf(`{"checker": %q, "files": ["no/such.c"]}`, testChecker), http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewBufferString(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}
	if stats := getStats(t, ts); stats.ScanErrors != 4 {
		t.Fatalf("scan_errors = %d, want 4", stats.ScanErrors)
	}
}
