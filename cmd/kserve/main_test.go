package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"knighter/internal/api"
	"knighter/internal/kernel"
	"knighter/internal/minic"
	"knighter/internal/scan"
	"knighter/internal/store"
)

const testChecker = `
checker serve_npd {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "devm_kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return newTestServerWithAdmission(t, nil)
}

// newTestServerWithAdmission builds the server with the read admission
// gate installed BEFORE the routes are wired: routes() captures the
// gates when wrapping handlers, so a gate set afterwards would never see
// traffic. Writes stay ungated.
func newTestServerWithAdmission(t *testing.T, adm *admission) (*server, *httptest.Server) {
	t.Helper()
	return newTestServerWithGates(t, adm, nil)
}

// newTestServerWithGates installs both the read gate (/scan, /batch) and
// the write gate (/patch, /changeset).
func newTestServerWithGates(t *testing.T, read, write *admission) (*server, *httptest.Server) {
	t.Helper()
	corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.1})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(scan.NewIncremental(cb, store.NewMemory(0)))
	srv.setGates(read, write)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postScan(t *testing.T, ts *httptest.Server, body any) *api.ScanResponse {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /scan status = %d", resp.StatusCode)
	}
	var out api.ScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func getStats(t *testing.T, ts *httptest.Server) *api.StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz status = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["ok"] != true {
		t.Fatalf("healthz = %v", out)
	}
}

// TestRepeatScanServedFromCache is the service-level acceptance
// criterion: the second POST /scan for the same checker must be served
// >= 90% from cache, observable both in the response and in GET /stats.
func TestRepeatScanServedFromCache(t *testing.T) {
	_, ts := newTestServer(t)
	req := api.ScanRequest{Checker: testChecker}

	first := postScan(t, ts, req)
	if first.Cache.Hits != 0 {
		t.Fatalf("cold scan had %d cache hits, want 0", first.Cache.Hits)
	}
	if len(first.Reports) == 0 {
		t.Fatal("cold scan found no reports; corpus seeds devm_kzalloc NPD bugs")
	}
	before := getStats(t, ts)

	second := postScan(t, ts, req)
	if second.Cache.HitRate < 0.9 {
		t.Fatalf("second scan hit rate = %.3f, want >= 0.9", second.Cache.HitRate)
	}
	a, _ := json.Marshal(first.Reports)
	b, _ := json.Marshal(second.Reports)
	if !bytes.Equal(a, b) {
		t.Fatal("cached scan reports differ from cold scan reports")
	}

	after := getStats(t, ts)
	dHits := after.Store.Hits - before.Store.Hits
	dMisses := after.Store.Misses - before.Store.Misses
	if dHits+dMisses == 0 {
		t.Fatal("stats did not move between scans")
	}
	if rate := float64(dHits) / float64(dHits+dMisses); rate < 0.9 {
		t.Fatalf("store-level hit rate for second scan = %.3f, want >= 0.9", rate)
	}
	if after.Scans != 2 {
		t.Fatalf("scans counter = %d, want 2", after.Scans)
	}
}

// TestScanFileSubset exercises the files filter and per-file caching:
// scanning one file warms only that file's functions.
func TestScanFileSubset(t *testing.T) {
	srv, ts := newTestServer(t)
	path := srv.inc.Codebase().Files()[0].Name
	one := postScan(t, ts, api.ScanRequest{Checker: testChecker, Files: []string{path}})
	if one.FilesScanned != 1 {
		t.Fatalf("files scanned = %d, want 1", one.FilesScanned)
	}
	again := postScan(t, ts, api.ScanRequest{Checker: testChecker, Files: []string{path}})
	if again.Cache.Misses != 0 {
		t.Fatalf("re-scan of one file missed %d times, want 0", again.Cache.Misses)
	}
}

func TestScanRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"bad JSON", "{", http.StatusBadRequest},
		{"missing checker", "{}", http.StatusBadRequest},
		{"broken DSL", `{"checker": "checker x {"}`, http.StatusUnprocessableEntity},
		{"unknown file", fmt.Sprintf(`{"checker": %q, "files": ["no/such.c"]}`, testChecker), http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewBufferString(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.code {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.code)
			}
		})
	}
	if stats := getStats(t, ts); stats.ScanErrors != 4 {
		t.Fatalf("scan_errors = %d, want 4", stats.ScanErrors)
	}
}

const testCheckerB = `
checker serve_npd_b {
  bugtype "Null-Pointer-Dereference"
  track aliases
  source { call "kzalloc" yields nullable }
  guard { nullcheck }
  sink { deref unchecked }
}
`

func postJSON(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestPatchEndpointConfinesMisses is the service-level acceptance
// criterion for corpus mutation: after POST /patch of one function, the
// next scan misses only on the functions the patch changed.
func TestPatchEndpointConfinesMisses(t *testing.T) {
	srv, ts := newTestServer(t)
	cb := srv.inc.Codebase()
	path := cb.Files()[0].Name

	// Canonicalize the target file (whole-file replace), then warm.
	var rep api.PatchResponse
	if code := postJSON(t, ts, "/patch", api.PatchRequest{
		Path: path, Source: minic.FormatFile(cb.Files()[0]),
	}, &rep); code != http.StatusOK {
		t.Fatalf("replace status = %d", code)
	}
	if rep.Mode != "replace" || rep.Generation != 1 {
		t.Fatalf("replace response = %+v", rep)
	}
	postScan(t, ts, api.ScanRequest{Checker: testChecker})
	warm := postScan(t, ts, api.ScanRequest{Checker: testChecker})
	if warm.Cache.Misses != 0 {
		t.Fatalf("warm-up left %d misses", warm.Cache.Misses)
	}

	// Patch the last function of the file.
	j := len(cb.Files()[0].Funcs) - 1
	fn := cb.Files()[0].Funcs[j]
	src := minic.FormatFunc(fn)
	brace := strings.Index(src, "{")
	src = src[:brace+1] + "\n\tint patched_probe;" + src[brace+1:]
	if code := postJSON(t, ts, "/patch", api.PatchRequest{
		Path: path, Func: fn.Name, Source: src,
	}, &rep); code != http.StatusOK {
		t.Fatalf("patch status = %d", code)
	}
	if rep.Mode != "patch" || rep.ChangedFuncs != 1 || rep.Generation != 2 {
		t.Fatalf("patch response = %+v", rep)
	}

	after := postScan(t, ts, api.ScanRequest{Checker: testChecker})
	if after.Cache.Misses != 1 {
		t.Fatalf("post-patch scan missed %d times, want 1", after.Cache.Misses)
	}
	if after.Cache.Hits != warm.Cache.Hits-1 {
		t.Fatalf("post-patch hits = %d, want %d", after.Cache.Hits, warm.Cache.Hits-1)
	}

	stats := getStats(t, ts)
	if stats.Patches != 2 || stats.Generation != 2 {
		t.Fatalf("stats after two mutations: %+v", stats)
	}
}

func TestPatchEndpointRejectsBadRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	path := srv.inc.Codebase().Files()[0].Name
	cases := []struct {
		name string
		req  api.PatchRequest
		code int
	}{
		{"missing path", api.PatchRequest{Source: "int f(void)\n{\n\treturn 0;\n}"}, http.StatusBadRequest},
		{"missing source", api.PatchRequest{Path: path}, http.StatusBadRequest},
		{"unknown file", api.PatchRequest{Path: "no/such.c", Source: "int x;"}, http.StatusUnprocessableEntity},
		{"parse error", api.PatchRequest{Path: path, Source: "int broken("}, http.StatusUnprocessableEntity},
		{"unknown func", api.PatchRequest{Path: path, Func: "nope", Source: "int f(void)\n{\n\treturn 0;\n}"}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code := postJSON(t, ts, "/patch", tc.req, nil); code != tc.code {
				t.Fatalf("status = %d, want %d", code, tc.code)
			}
		})
	}
}

// TestBatchServedFromWarmStore is the batch acceptance criterion: after
// one checker warms the store, a batch containing that checker serves it
// ~100% from cache while cold checkers scan and broken ones error — all
// in one request.
func TestBatchServedFromWarmStore(t *testing.T) {
	_, ts := newTestServer(t)
	postScan(t, ts, api.ScanRequest{Checker: testChecker}) // warm checker A

	var out api.BatchResponse
	if code := postJSON(t, ts, "/batch", api.BatchRequest{
		Checkers: []string{testChecker, testCheckerB, "checker broken {"},
	}, &out); code != http.StatusOK {
		t.Fatalf("batch status = %d", code)
	}
	if out.CheckersRun != 2 || out.CheckerErrors != 1 {
		t.Fatalf("run=%d errors=%d, want 2/1", out.CheckersRun, out.CheckerErrors)
	}
	a, b, bad := out.Results[0], out.Results[1], out.Results[2]
	if a.Cache.Misses != 0 || a.Cache.Hits == 0 {
		t.Fatalf("warm checker not cache-served: %+v", a.Cache)
	}
	if b.Cache.Hits != 0 || b.Cache.Misses == 0 {
		t.Fatalf("cold checker unexpectedly warm: %+v", b.Cache)
	}
	if bad.Error == "" {
		t.Fatal("broken checker entry has no error")
	}
	if out.Cache.Hits != a.Cache.Hits || out.Cache.Misses != b.Cache.Misses {
		t.Fatalf("aggregate cache %+v does not sum per-checker outcomes", out.Cache)
	}

	// Per-checker batch results equal standalone scans.
	solo := postScan(t, ts, api.ScanRequest{Checker: testChecker})
	ja, _ := json.Marshal(a.Reports)
	js, _ := json.Marshal(solo.Reports)
	if !bytes.Equal(ja, js) {
		t.Fatal("batch entry reports differ from a standalone scan")
	}

	stats := getStats(t, ts)
	if stats.Batches != 1 {
		t.Fatalf("batches counter = %d, want 1", stats.Batches)
	}
}

// TestChangesetEndpointConfinesMisses is the service-level tentpole
// acceptance criterion: a K-file POST /changeset drains once, bumps the
// generation once, and the next scan misses only on the functions the
// changeset changed in the K touched files.
func TestChangesetEndpointConfinesMisses(t *testing.T) {
	srv, ts := newTestServer(t)
	cb := srv.inc.Codebase()
	if len(cb.Files()) < 3 {
		t.Fatalf("corpus too small: %d files", len(cb.Files()))
	}
	files := []int{0, 1, 2}

	// Canonicalize the three target files in ONE changeset, then warm.
	var canon []api.Change
	for _, i := range files {
		canon = append(canon, api.Change{Path: cb.Files()[i].Name, Source: minic.FormatFile(cb.Files()[i])})
	}
	var rep api.ChangesetResponse
	if code := postJSON(t, ts, "/changeset", api.ChangesetRequest{Changes: canon}, &rep); code != http.StatusOK {
		t.Fatalf("canonicalizing changeset status = %d", code)
	}
	if rep.Ops != 3 || len(rep.Files) != 3 || rep.Generation != 1 {
		t.Fatalf("changeset response = %+v, want 3 ops / 3 files / generation 1", rep)
	}
	postScan(t, ts, api.ScanRequest{Checker: testChecker})
	warm := postScan(t, ts, api.ScanRequest{Checker: testChecker})
	if warm.Cache.Misses != 0 {
		t.Fatalf("warm-up left %d misses", warm.Cache.Misses)
	}

	// Patch the last function of each of the three files in one commit.
	var changes []api.Change
	for _, i := range files {
		fn := cb.Files()[i].Funcs[len(cb.Files()[i].Funcs)-1]
		src := minic.FormatFunc(fn)
		brace := strings.Index(src, "{")
		changes = append(changes, api.Change{
			Path: cb.Files()[i].Name, Func: fn.Name,
			Source: src[:brace+1] + "\n\tint changeset_probe;" + src[brace+1:],
		})
	}
	if code := postJSON(t, ts, "/changeset", api.ChangesetRequest{Changes: changes}, &rep); code != http.StatusOK {
		t.Fatalf("changeset status = %d", code)
	}
	if rep.ChangedFuncs != 3 || rep.StaleHashes != 3 || rep.Generation != 2 {
		t.Fatalf("changeset response = %+v, want 3 changed funcs / 3 stale hashes / generation 2", rep)
	}
	if rep.StoreInvalidated != 3 {
		t.Fatalf("store invalidated %d entries, want 3", rep.StoreInvalidated)
	}

	after := postScan(t, ts, api.ScanRequest{Checker: testChecker})
	if after.Cache.Misses != 3 {
		t.Fatalf("post-changeset scan missed %d times, want 3", after.Cache.Misses)
	}
	if after.Cache.Hits != warm.Cache.Hits-3 {
		t.Fatalf("post-changeset hits = %d, want %d", after.Cache.Hits, warm.Cache.Hits-3)
	}
	stats := getStats(t, ts)
	if stats.Changesets != 2 || stats.Generation != 2 {
		t.Fatalf("stats after two changesets: changesets=%d generation=%d", stats.Changesets, stats.Generation)
	}
}

func TestChangesetEndpointRejectsBadRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	cb := srv.inc.Codebase()
	path := cb.Files()[0].Name
	genBefore := getStats(t, ts).Generation
	ok := api.Change{Path: path, Source: minic.FormatFile(cb.Files()[0])}
	cases := []struct {
		name string
		req  api.ChangesetRequest
		code int
	}{
		{"no changes", api.ChangesetRequest{}, http.StatusBadRequest},
		{"missing path", api.ChangesetRequest{Changes: []api.Change{{Source: "int x;"}}}, http.StatusBadRequest},
		{"missing source", api.ChangesetRequest{Changes: []api.Change{{Path: path}}}, http.StatusBadRequest},
		{"unknown file poisons the set", api.ChangesetRequest{Changes: []api.Change{ok, {Path: "no/such.c", Source: "int x;"}}}, http.StatusUnprocessableEntity},
		{"parse error poisons the set", api.ChangesetRequest{Changes: []api.Change{ok, {Path: path, Source: "int broken("}}}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if code := postJSON(t, ts, "/changeset", tc.req, nil); code != tc.code {
				t.Fatalf("status = %d, want %d", code, tc.code)
			}
		})
	}
	// Atomicity is observable over the wire: no rejected set moved the
	// generation, even the ones whose first change was valid.
	if g := getStats(t, ts).Generation; g != genBefore {
		t.Fatalf("rejected changesets bumped generation %d -> %d", genBefore, g)
	}
}

// TestAdmissionShedsExcessLoad saturates a 1-inflight/1-queued gate with
// a slow scan and verifies the contract: excess concurrent requests get
// 429 with a Retry-After hint, admitted requests complete normally, and
// the shed/admitted counters land in /stats.
func TestAdmissionShedsExcessLoad(t *testing.T) {
	srv, ts := newTestServerWithAdmission(t, newAdmission(1, 1, 0))

	release := make(chan struct{})
	var inflight sync.WaitGroup
	inflight.Add(1)
	go func() {
		defer inflight.Done()
		// Occupy the single inflight slot directly (the gate is the unit
		// under test; no need for a genuinely slow scan).
		srv.adm.tokens <- struct{}{}
		<-release
		<-srv.adm.tokens
	}()
	for len(srv.adm.tokens) == 0 {
		time.Sleep(time.Millisecond) // until the occupier holds the slot
	}

	// Fill the one queue slot with a request that will block.
	queuedDone := make(chan *http.Response, 1)
	go func() {
		data, _ := json.Marshal(api.ScanRequest{Checker: testChecker})
		resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Error(err)
			queuedDone <- nil
			return
		}
		queuedDone <- resp
	}()
	for srv.adm.snapshot().Queued == 0 {
		time.Sleep(time.Millisecond) // until the second request is queued
	}

	// The third concurrent request must shed.
	data, _ := json.Marshal(api.ScanRequest{Checker: testChecker})
	resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated request status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", ra)
	}

	// Release the slot: the queued request is admitted and completes.
	close(release)
	inflight.Wait()
	if qr := <-queuedDone; qr == nil {
		t.Fatal("queued request failed outright")
	} else {
		defer qr.Body.Close()
		if qr.StatusCode != http.StatusOK {
			t.Fatalf("queued request status = %d after drain, want 200", qr.StatusCode)
		}
	}

	stats := getStats(t, ts)
	if stats.Admission == nil {
		t.Fatal("admission stats missing from /stats")
	}
	if stats.Admission.Shed != 1 || stats.Admission.Admitted != 1 {
		t.Fatalf("admission counters = %+v, want 1 shed / 1 admitted", stats.Admission)
	}
	if stats.Admission.Queued != 0 || stats.Admission.Inflight != 0 {
		t.Fatalf("gate not drained: %+v", stats.Admission)
	}
}

// TestConcurrentBatchesAndPatches hammers /batch and /patch from many
// goroutines; under -race this is the concurrency-control acceptance
// test (a patch must wait for in-flight scans and batches to drain).
func TestConcurrentBatchesAndPatches(t *testing.T) {
	srv, ts := newTestServer(t)
	cb := srv.inc.Codebase()
	path := cb.Files()[0].Name
	canonical := minic.FormatFile(cb.Files()[0])

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				if g%2 == 0 {
					var out api.BatchResponse
					if code := postJSON(t, ts, "/batch", api.BatchRequest{
						Checkers:    []string{testChecker, testCheckerB},
						Concurrency: 2,
					}, &out); code != http.StatusOK {
						errs <- fmt.Sprintf("batch status %d", code)
					}
				} else {
					var out api.PatchResponse
					if code := postJSON(t, ts, "/patch", api.PatchRequest{
						Path: path, Source: canonical,
					}, &out); code != http.StatusOK {
						errs <- fmt.Sprintf("patch status %d", code)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if stats := getStats(t, ts); stats.Patches != 6 || stats.Batches != 6 {
		t.Fatalf("counters after hammering: %+v", stats)
	}
}
