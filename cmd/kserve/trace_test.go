package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"knighter/internal/api"
	"knighter/internal/kernel"
	"knighter/internal/obs"
	"knighter/internal/scan"
	"knighter/internal/shard"
	"knighter/internal/store"
)

// newTracedFleet boots a 3-shard kserve fleet sharing one traced
// kcached — the full deployment shape of GET /trace/{id}: every replica
// retains all of its traces (sample=1), fans collection out to its
// peers and kcached, and every replica's remote tier rides through the
// shared cache daemon so kcached fragments exist to collect.
func newTracedFleet(t *testing.T, n int) ([]*server, []*httptest.Server, *httptest.Server) {
	t.Helper()
	disk, err := store.NewSegmentDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	cs := store.NewCacheServer(store.NewTiered(store.NewMemory(0), disk))
	cs.EnableTracing(obs.NewTraceStore(256, 1, 0))
	kc := httptest.NewServer(cs.Handler())
	t.Cleanup(kc.Close)

	srvs := make([]*server, n)
	tss := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range srvs {
		corpus := kernel.Generate(kernel.Config{Seed: 1, Scale: 0.1})
		cb, err := scan.NewCodebase(corpus)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := store.NewRemote(kc.URL, store.RemoteConfig{})
		if err != nil {
			t.Fatal(err)
		}
		var st store.Store = store.NewTiered(store.NewMemory(0), asyncInvalidate{remote})
		srvs[i] = newServer(scan.NewIncremental(cb, store.NewCoalesced(st)))
		srvs[i].remote = remote
		srvs[i].traces = obs.NewTraceStore(256, 1, 0)
		tss[i] = httptest.NewServer(srvs[i].routes())
		t.Cleanup(tss[i].Close)
		urls[i] = tss[i].URL
	}
	for i, srv := range srvs {
		srv.setupShard(i, n, urls, "", 10*time.Second, 0)
		var targets []string
		for j, u := range urls {
			if j != i {
				targets = append(targets, u)
			}
		}
		targets = append(targets, kc.URL)
		srv.traceColl = shard.NewTraceCollector(targets, 2*time.Second)
	}
	return srvs, tss, kc
}

// postScanTraced posts a /scan and returns the response plus the trace
// id the daemon stamped on X-Trace-Id.
func postScanTraced(t *testing.T, ts *httptest.Server, body api.ScanRequest) (*api.ScanResponse, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/scan", "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /scan status = %d", resp.StatusCode)
	}
	var out api.ScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	id := resp.Header.Get(obs.TraceHeader)
	if id == "" {
		t.Fatal("scan response missing X-Trace-Id")
	}
	return &out, id
}

func getAssembled(t *testing.T, ts *httptest.Server, id string) (*obs.AssembledTrace, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var asm obs.AssembledTrace
	if err := json.NewDecoder(resp.Body).Decode(&asm); err != nil {
		t.Fatal(err)
	}
	return &asm, resp.StatusCode
}

// collectTree flattens an assembled tree (root + orphans) depth-first.
func collectTree(asm *obs.AssembledTrace) []*obs.TraceNode {
	var out []*obs.TraceNode
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	if asm.Root != nil {
		walk(asm.Root)
	}
	for _, o := range asm.Orphans {
		walk(o)
	}
	return out
}

// TestFleetTraceAssembly is the tentpole acceptance criterion: one
// coordinated scan across a 3-shard fleet with a shared kcached, then
// GET /trace/{id} on the coordinator returns a single rooted span tree
// containing spans from every shard owner AND at least one kcached
// span, with parent/child offsets consistent.
func TestFleetTraceAssembly(t *testing.T) {
	_, tss, _ := newTracedFleet(t, 3)
	_, id := postScanTraced(t, tss[0], api.ScanRequest{Checker: testChecker})

	asm, code := getAssembled(t, tss[0], id)
	if code != http.StatusOK {
		t.Fatalf("GET /trace/%s = %d", id, code)
	}
	if asm.TraceID != id || asm.Root == nil {
		t.Fatalf("assembled trace: id=%q root=%v", asm.TraceID, asm.Root)
	}
	if !asm.Root.Root || asm.Root.Service != "kserve-0" || asm.Root.Name != "scan" {
		t.Fatalf("root span = %+v", asm.Root.Span)
	}
	for _, svc := range []string{"kserve-0", "kserve-1", "kserve-2", "kcached"} {
		found := false
		for _, s := range asm.Services {
			if s == svc {
				found = true
			}
		}
		if !found {
			t.Fatalf("services = %v, missing %s", asm.Services, svc)
		}
	}

	nodes := collectTree(asm)
	if len(nodes) != asm.SpanCount {
		t.Fatalf("tree holds %d nodes, span_count says %d", len(nodes), asm.SpanCount)
	}
	// Every shard owner's sub-scan fragment is IN the root's tree (not
	// an orphan), reached through the coordinator's shard_N span.
	inRoot := map[string]bool{}
	var walk func(n *obs.TraceNode)
	walk = func(n *obs.TraceNode) {
		if n.Root {
			inRoot[n.Service] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(asm.Root)
	for _, svc := range []string{"kserve-1", "kserve-2", "kcached"} {
		if !inRoot[svc] {
			t.Fatalf("no %s fragment attached under the root tree (orphans: %d)", svc, len(asm.Orphans))
		}
	}
	// Offset consistency: children never start before their parent.
	var check func(n *obs.TraceNode)
	check = func(n *obs.TraceNode) {
		for _, c := range n.Children {
			if c.AbsOffsetMS < n.AbsOffsetMS {
				t.Fatalf("span %s %q starts at %v, before parent %s at %v",
					c.SpanID, c.Name, c.AbsOffsetMS, n.SpanID, n.AbsOffsetMS)
			}
			check(c)
		}
	}
	check(asm.Root)

	// The text form renders the same tree as a waterfall.
	resp, err := http.Get(tss[0].URL + "/trace/" + id + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	wf := b.String()
	for _, frag := range []string{"trace " + id, "kserve-0 scan", "kserve-1", "kcached"} {
		if !strings.Contains(wf, frag) {
			t.Fatalf("waterfall missing %q:\n%s", frag, wf)
		}
	}

	// The coordinator's local index lists the trace.
	var list api.TraceListResponse
	lresp, err := http.Get(tss[0].URL + "/traces?limit=10")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range list.Traces {
		if tr.TraceID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("/traces does not list %s: %+v", id, list.Traces)
	}
}

// TestFleetTraceDegradedShard: kill one shard, scan, and the assembled
// trace must mark that shard's partition degraded_local_fallback — the
// trace-level twin of the CI fault-injection smoke.
func TestFleetTraceDegradedShard(t *testing.T) {
	srvs, tss, _ := newTracedFleet(t, 3)
	tss[2].Close() // SIGKILL stand-in

	_, id := postScanTraced(t, tss[0], api.ScanRequest{Checker: testChecker})
	if srvs[0].shard.degraded.Load() == 0 {
		t.Fatal("dead shard produced no degraded scatter")
	}

	asm, code := getAssembled(t, tss[0], id)
	if code != http.StatusOK {
		t.Fatalf("GET /trace/%s = %d", id, code)
	}
	degraded := 0
	for _, n := range collectTree(asm) {
		if n.Status == obs.SpanDegraded {
			degraded++
			if !strings.HasPrefix(n.Name, "shard_") {
				t.Fatalf("degraded status on unexpected span %q", n.Name)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no span carries degraded_local_fallback")
	}
	// The trace survives tail sampling on the degraded class alone.
	if st, ok := srvs[0].traces.Get(id); !ok || st.Kept == "" {
		t.Fatalf("coordinator did not retain the degraded trace: %+v", st)
	}
}

// TestErrorEnvelopeCarriesTraceID: satellite (c) — the uniform error
// envelope duplicates the X-Trace-Id header in the body.
func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/scan", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var envelope api.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.TraceID == "" || envelope.TraceID != resp.Header.Get(obs.TraceHeader) {
		t.Fatalf("envelope trace_id %q != header %q", envelope.TraceID, resp.Header.Get(obs.TraceHeader))
	}
}

// TestTraceUnknownIs404: a trace nobody retained (never existed,
// sampled out everywhere, or evicted) answers 404 after the fan-out
// comes back empty — not a crash, not an empty 200.
func TestTraceUnknownIs404(t *testing.T) {
	_, tss, _ := newTracedFleet(t, 3)
	if _, code := getAssembled(t, tss[0], "no-such-trace"); code != http.StatusNotFound {
		t.Fatalf("unknown trace returned %d, want 404", code)
	}
}
