module knighter

go 1.22
