// The CVE-2025-21715 case study (§5.2.2, Fig. 10a/10b): a use-after-free
// patch that moves free_netdev() after the last use of netdev_priv()
// data teaches a checker that then finds the same pattern in an
// unrelated driver's remove path.
package main

import (
	"fmt"
	"log"

	"knighter/internal/checker"
	"knighter/internal/engine"
	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/minic"
	"knighter/internal/synth"
)

// The paper's Fig. 10b target: dm9000_drv_remove uses the private data
// after free_netdev() releases it.
const dm9000 = `
struct board_info {
	int power_supply;
};

static void dm9000_drv_remove(struct platform_device *pdev)
{
	struct net_device *ndev = platform_get_drvdata(pdev);
	struct board_info *dm = netdev_priv(ndev);

	dm9000_release_board(pdev, dm);
	free_netdev(ndev);
	if (dm->power_supply)
		regulator_disable(dm->power_supply);
}
`

func main() {
	commits := kernel.BuildHandCommits(11)
	input := commits.ByClass(kernel.ClassUAF)[0] // the free_netdev ordering patch
	fmt.Printf("input patch %s: %s\n\n%s\n", input.ID, input.Subject, input.Diff())

	model := llm.NewOracle(llm.O3Mini)
	pipe := synth.NewPipeline(model, synth.Options{})
	out := pipe.GenChecker(input)
	if !out.Valid {
		log.Fatal("synthesis failed unexpectedly")
	}
	fmt.Printf("synthesized checker:\n%s\n", out.Spec.String())

	file, err := minic.ParseFile("drivers/net/ethernet/davicom/dm9000.c", dm9000)
	if err != nil {
		log.Fatal(err)
	}
	res := engine.AnalyzeFile(file, engine.Options{Checkers: []checker.Checker{out.Checker}})
	fmt.Printf("scan of dm9000_drv_remove: %d report(s)\n", len(res.Reports))
	for _, r := range res.Reports {
		fmt.Println("  " + r.String())
		for _, step := range r.Trace {
			fmt.Printf("    trace %d: %s\n", step.Pos.Line, step.Note)
		}
	}
	fmt.Println("\nThe checker learned from one driver's ordering fix and found the")
	fmt.Println("same use-after-free in another driver — the CVE-2025-21715 story.")
}
