// The paper's motivating scenario (§2.2, Fig. 2-4) end to end: start
// from the historical devm_kzalloc patch commit, run the multi-stage
// synthesis pipeline (pattern analysis -> plan -> implementation ->
// validation), then deploy the checker across the synthetic kernel and
// find the latent CVE-2024-50103-style bugs it was never trained on.
package main

import (
	"fmt"
	"log"

	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/scan"
	"knighter/internal/synth"
	"knighter/internal/triage"
)

func main() {
	// 1. The input patch: the hand-benchmark's devm_kzalloc commit.
	commits := kernel.BuildHandCommits(11)
	var input = commits.ByClass(kernel.ClassNPD)[0]
	fmt.Printf("input patch %s: %s\n\n%s\n", input.ID, input.Subject, input.Diff())

	// 2. Multi-stage synthesis (Algorithm 1).
	model := llm.NewOracle(llm.O3Mini)
	pipe := synth.NewPipeline(model, synth.Options{})
	out := pipe.GenChecker(input)
	if !out.Valid {
		log.Fatal("synthesis failed — unexpected for the motivating commit")
	}
	fmt.Printf("bug pattern: %s\n\nplan:\n%s\n\n", out.Pattern.Text, out.Plan.Text())
	fmt.Printf("synthesized checker (valid: N_buggy=%d > N_patched=%d):\n%s\n",
		out.NBuggy, out.NPatched, out.Spec.String())

	// 3. Deploy across the whole synthetic kernel.
	corpus := kernel.Generate(kernel.Config{Seed: 1})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		log.Fatal(err)
	}
	res := cb.RunOne(out.Checker, scan.Options{})
	fmt.Printf("whole-kernel scan: %d files, %d reports\n\n", res.FilesScanned, len(res.Reports))

	// 4. Triage and match against the ground-truth ledger.
	agent := triage.NewAgent(corpus)
	newBugs, fps := 0, 0
	for _, r := range res.Reports {
		if !agent.Classify(r, 0).Bug {
			continue
		}
		if bug, ok := corpus.IsBugSite(r.File, r.Func); ok {
			newBugs++
			years := corpus.NowDate.Sub(bug.Introduced).Hours() / 24 / 365.25
			fmt.Printf("NEW BUG %s (latent %.1f years): %s\n", bug.ID, years, r)
		} else {
			fps++
		}
	}
	fmt.Printf("\n%d new bugs found by a checker synthesized from one historical patch (%d false positives)\n",
		newBugs, fps)
}
