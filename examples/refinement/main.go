// The closed-loop refinement story (§3.2, Fig. 7): a first-draft checker
// validates against its patch but drowns in false positives on real
// code because it does not see through unlikely(); the triage agent
// labels sampled reports, the refinement agent fixes the checker, and
// the loop re-validates — ending with a plausible checker.
package main

import (
	"fmt"
	"log"

	"knighter/internal/kernel"
	"knighter/internal/llm"
	"knighter/internal/refine"
	"knighter/internal/scan"
	"knighter/internal/synth"
	"knighter/internal/triage"
)

func main() {
	commits := kernel.BuildHandCommits(11)
	// The kzalloc NPD commit: its first valid checker is naive (no
	// unlikely() handling), which the corpus punishes.
	var input = commits.ByClass(kernel.ClassNPD)[1]
	fmt.Printf("input patch %s (%s/%s)\n\n", input.ID, input.Class, input.Flavor)

	model := llm.NewOracle(llm.O3Mini)
	pipe := synth.NewPipeline(model, synth.Options{})
	out := pipe.GenChecker(input)
	if !out.Valid {
		log.Fatal("synthesis failed unexpectedly")
	}
	fmt.Printf("first valid checker:\n%s\n", out.Spec.String())

	corpus := kernel.Generate(kernel.Config{Seed: 1})
	cb, err := scan.NewCodebase(corpus)
	if err != nil {
		log.Fatal(err)
	}
	agent := triage.NewAgent(corpus)

	// Show the pre-refinement scan: count how many reports are bait
	// functions that use if (unlikely(!p)) — correct code the naive
	// checker cannot understand (paper Fig. 7).
	pre := cb.RunOne(out.Checker, scan.Options{MaxReports: 100})
	baitHits := 0
	for _, r := range pre.Reports {
		if bait, ok := corpus.BaitAt(r.File, r.Func); ok && bait.Kind == kernel.BaitUnlikelyCheck {
			baitHits++
		}
	}
	fmt.Printf("pre-refinement scan: %d reports, of which %d are unlikely()-guarded false positives\n\n",
		len(pre.Reports), baitHits)

	loop := refine.NewLoop(cb, agent, model, pipe.Val, refine.Options{})
	rr := loop.Run(input, out.Spec)
	fmt.Printf("refinement: %s after %d round(s), %d accepted step(s)\n\n", rr.Disposition, rr.Rounds, rr.Steps)
	fmt.Printf("refined checker:\n%s\n", rr.Spec.String())
	fmt.Printf("post-refinement scan: %d reports\n", len(rr.FinalReports))
	for _, r := range rr.FinalReports {
		label := "?"
		if _, ok := corpus.IsBugSite(r.File, r.Func); ok {
			label = "TRUE BUG"
		} else if _, ok := corpus.BaitAt(r.File, r.Func); ok {
			label = "residual FP"
		}
		fmt.Printf("  [%s] %s\n", label, r)
	}
}
