// Quickstart: write a checker in the DSL, compile it, and run the
// path-sensitive engine over a buggy and a fixed version of a function —
// the inner loop of everything KNighter does.
package main

import (
	"fmt"
	"log"

	"knighter/internal/checker"
	"knighter/internal/ckdsl"
	"knighter/internal/engine"
	"knighter/internal/minic"
)

// A checker in the synthesis DSL: track devm_kzalloc() results, mark
// them checked on NULL tests (seeing through unlikely()), and report
// dereferences of unchecked results. This is the running example of the
// paper (Fig. 2).
const checkerSrc = `
checker quickstart_npd {
  bugtype "Null-Pointer-Dereference"
  description "missing NULL check on devm_kzalloc() result"
  track aliases
  unwrap "unlikely" "likely"
  source { call "devm_kzalloc" yields nullable }
  guard  { nullcheck }
  sink   { deref unchecked report "pointer may be NULL when dereferenced" }
}
`

const buggy = `
static int pci1xxxx_spi_probe(struct pci_dev *pdev, int iter)
{
	struct spi_sub *spi_sub_ptr;
	spi_sub_ptr = devm_kzalloc(&pdev->dev, sizeof(struct spi_sub), GFP_KERNEL);
	spi_sub_ptr->irq = 0;
	return 0;
}
`

const fixed = `
static int pci1xxxx_spi_probe(struct pci_dev *pdev, int iter)
{
	struct spi_sub *spi_sub_ptr;
	spi_sub_ptr = devm_kzalloc(&pdev->dev, sizeof(struct spi_sub), GFP_KERNEL);
	if (!spi_sub_ptr)
		return -ENOMEM;
	spi_sub_ptr->irq = 0;
	return 0;
}
`

func main() {
	ck, err := ckdsl.CompileSource(checkerSrc)
	if err != nil {
		log.Fatalf("checker does not compile: %v", err)
	}
	for _, tc := range []struct{ name, src string }{{"buggy", buggy}, {"fixed", fixed}} {
		file, err := minic.ParseFile(tc.name+".c", tc.src)
		if err != nil {
			log.Fatalf("parse %s: %v", tc.name, err)
		}
		res := engine.AnalyzeFile(file, engine.Options{Checkers: []checker.Checker{ck}})
		fmt.Printf("%s version: %d report(s), %d path(s) explored\n", tc.name, len(res.Reports), res.Paths)
		for _, r := range res.Reports {
			fmt.Println("  " + r.String())
			for _, step := range r.Trace {
				fmt.Printf("    trace %d: %s\n", step.Pos.Line, step.Note)
			}
		}
	}
}
